//! `mcsim-obs` — the observability substrate for the LOAM reproduction.
//!
//! A lightweight, zero-dependency metrics + tracing layer threaded through
//! the optimize→execute→featurize→train→infer pipeline. Four primitives:
//!
//! * **Counters** ([`counter`]) — monotonically increasing event counts
//!   (plans explored, stages executed, cache hits, …).
//! * **Gauges** ([`gauge`]) — last-write-wins point samples (GRL λ,
//!   cluster utilization, …).
//! * **Histograms** ([`observe`]) — log₂-bucketed value distributions
//!   (losses, queue waits, allocation sizes, …).
//! * **Spans** ([`span`]) — RAII wall-clock timers that nest into a
//!   `parent/child` path per thread (`fig6/train/epoch`, …).
//!
//! Events flow to a process-global [`Recorder`]. By default none is
//! installed and every entry point reduces to one relaxed atomic load —
//! instrumentation in hot paths costs ~nothing when observability is off.
//! Install the bundled [`InMemoryRecorder`] (or your own `Recorder` impl)
//! with [`install`] to start collecting; take a [`MetricsSnapshot`] to
//! render everything as JSON without any serde dependency.
//!
//! ```
//! use std::sync::Arc;
//!
//! let rec = Arc::new(mcsim_obs::InMemoryRecorder::new());
//! mcsim_obs::install(rec.clone());
//! {
//!     let _outer = mcsim_obs::span("optimize");
//!     mcsim_obs::counter("optimizer.plans_explored", 12);
//! }
//! let snap = rec.snapshot();
//! assert_eq!(snap.counter("optimizer.plans_explored"), 12);
//! mcsim_obs::uninstall();
//! ```

pub mod trace;

use std::cell::RefCell;
use std::collections::BTreeMap;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Arc, Mutex, RwLock};
use std::time::Instant;

// ---------------------------------------------------------------- recorder

/// Sink for observability events. All methods default to no-ops so custom
/// recorders implement only what they need.
///
/// Implementations must be cheap and non-blocking where possible: events
/// arrive from the simulator's hot paths (though never from per-tick inner
/// loops) and from multiple threads at once.
pub trait Recorder: Send + Sync {
    /// Adds `delta` to the counter `name`.
    fn counter(&self, name: &'static str, delta: u64) {
        let _ = (name, delta);
    }

    /// Sets the gauge `name` to `value` (last write wins).
    fn gauge(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Records one observation of `value` in the histogram `name`.
    fn observe(&self, name: &'static str, value: f64) {
        let _ = (name, value);
    }

    /// Reports a finished span. `path` is the slash-joined nesting path
    /// (including `name` as its last segment); `seconds` is wall-clock.
    fn span_complete(&self, path: &str, name: &'static str, seconds: f64) {
        let _ = (path, name, seconds);
    }
}

/// A recorder that drops every event. Installing it is equivalent to (but
/// slower than) having no recorder installed; it exists for tests and for
/// explicitly overriding an inherited recorder.
#[derive(Debug, Default, Clone, Copy)]
pub struct NoopRecorder;

impl Recorder for NoopRecorder {}

static ENABLED: AtomicBool = AtomicBool::new(false);

static RECORDER: RwLock<Option<Arc<dyn Recorder>>> = RwLock::new(None);

/// Installs `recorder` as the process-global sink, returning the previous
/// one (if any). Keep a clone of your `Arc` to read results later.
pub fn install(recorder: Arc<dyn Recorder>) -> Option<Arc<dyn Recorder>> {
    let mut slot = RECORDER.write().unwrap_or_else(|e| e.into_inner());
    let prev = slot.replace(recorder);
    ENABLED.store(true, Ordering::Release);
    prev
}

/// Removes the global recorder, returning it. Afterwards every entry point
/// is a single relaxed atomic load again.
pub fn uninstall() -> Option<Arc<dyn Recorder>> {
    let mut slot = RECORDER.write().unwrap_or_else(|e| e.into_inner());
    ENABLED.store(false, Ordering::Release);
    slot.take()
}

/// True if a recorder is currently installed.
#[inline]
pub fn enabled() -> bool {
    ENABLED.load(Ordering::Relaxed)
}

#[inline]
fn with_recorder(f: impl FnOnce(&dyn Recorder)) {
    if !enabled() {
        return;
    }
    let guard = RECORDER.read().unwrap_or_else(|e| e.into_inner());
    if let Some(rec) = guard.as_deref() {
        f(rec);
    }
}

/// Adds `delta` to the counter `name` on the installed recorder, if any.
#[inline]
pub fn counter(name: &'static str, delta: u64) {
    with_recorder(|r| r.counter(name, delta));
}

/// Sets the gauge `name` to `value` on the installed recorder, if any.
#[inline]
pub fn gauge(name: &'static str, value: f64) {
    with_recorder(|r| r.gauge(name, value));
}

/// Records `value` in the histogram `name` on the installed recorder.
#[inline]
pub fn observe(name: &'static str, value: f64) {
    with_recorder(|r| r.observe(name, value));
}

// ---------------------------------------------------------------- spans

thread_local! {
    static SPAN_STACK: RefCell<Vec<&'static str>> = const { RefCell::new(Vec::new()) };
}

/// RAII guard for a timed, hierarchically named region. Created by
/// [`span`]; reports to the recorder on drop.
#[must_use = "a span measures until dropped; binding it to `_` drops it immediately"]
pub struct Span {
    name: &'static str,
    start: Option<Instant>,
}

/// Opens a span named `name`, nested under any span already open on this
/// thread. When no recorder is installed this is free: no clock read, no
/// allocation, nothing reported on drop.
pub fn span(name: &'static str) -> Span {
    if !enabled() {
        return Span { name, start: None };
    }
    SPAN_STACK.with(|s| s.borrow_mut().push(name));
    Span {
        name,
        start: Some(Instant::now()),
    }
}

impl Span {
    /// The span's own (leaf) name.
    pub fn name(&self) -> &'static str {
        self.name
    }
}

impl Drop for Span {
    fn drop(&mut self) {
        let Some(start) = self.start else { return };
        let seconds = start.elapsed().as_secs_f64();
        let path = SPAN_STACK.with(|s| {
            let mut stack = s.borrow_mut();
            let path = stack.join("/");
            // Defensive: if user code leaked spans across threads the stack
            // could mismatch; popping by identity keeps paths sane.
            if stack.last() == Some(&self.name) {
                stack.pop();
            }
            path
        });
        with_recorder(|r| r.span_complete(&path, self.name, seconds));
    }
}

/// A monotonic stopwatch for code that wants an explicit duration rather
/// than RAII scoping (e.g. to store alongside other results).
#[derive(Debug, Clone, Copy)]
pub struct Timer {
    start: Instant,
}

impl Timer {
    /// Starts the stopwatch.
    pub fn start() -> Timer {
        Timer {
            start: Instant::now(),
        }
    }

    /// Seconds elapsed since [`Timer::start`].
    pub fn elapsed_seconds(&self) -> f64 {
        self.start.elapsed().as_secs_f64()
    }

    /// Records the elapsed time into histogram `name` and returns it.
    pub fn observe_as(&self, name: &'static str) -> f64 {
        let secs = self.elapsed_seconds();
        observe(name, secs);
        secs
    }
}

// ---------------------------------------------------------------- histogram

/// Number of log₂ buckets per histogram: exponents −32..=31.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A log₂-scale histogram: bucket `i` counts values with
/// `floor(log2(v)) == i - 32`, clamped at both ends; non-positive values
/// land in bucket 0. Also tracks count/sum/min/max exactly.
#[derive(Debug, Clone)]
pub struct Histogram {
    /// Bucket occupancy, by exponent (see [`Histogram::bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total number of observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: f64,
    /// Smallest observed value (`+inf` when empty).
    pub min: f64,
    /// Largest observed value (`-inf` when empty).
    pub max: f64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0.0,
            min: f64::INFINITY,
            max: f64::NEG_INFINITY,
        }
    }
}

impl Histogram {
    /// The bucket index `value` falls into.
    pub fn bucket_index(value: f64) -> usize {
        if value <= 0.0 || !value.is_finite() {
            return 0;
        }
        let exp = value.log2().floor() as i64;
        (exp.clamp(-32, 31) + 32) as usize
    }

    /// The inclusive-exclusive value range `[lo, hi)` bucket `i` covers.
    pub fn bucket_bounds(i: usize) -> (f64, f64) {
        let exp = i as i64 - 32;
        (2f64.powi(exp as i32), 2f64.powi(exp as i32 + 1))
    }

    /// Records one observation.
    pub fn record(&mut self, value: f64) {
        self.buckets[Self::bucket_index(value)] += 1;
        self.count += 1;
        self.sum += value;
        self.min = self.min.min(value);
        self.max = self.max.max(value);
    }

    /// Mean of all observations, or 0 when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum / self.count as f64
        }
    }

    /// Estimates the `q`-quantile (`q` in `[0, 1]`) from the log₂ buckets:
    /// walks buckets to the cumulative target and interpolates linearly
    /// inside the target bucket, clamped to the exact observed `[min, max]`.
    /// Returns 0 when empty.
    pub fn percentile(&self, q: f64) -> f64 {
        if self.count == 0 {
            return 0.0;
        }
        let q = q.clamp(0.0, 1.0);
        let target = q * self.count as f64;
        let mut cum = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            if n == 0 {
                continue;
            }
            let next = cum + n;
            if (next as f64) >= target {
                let (lo, hi) = Self::bucket_bounds(i);
                // Position of the target within this bucket's occupancy.
                let frac = if n == 0 {
                    0.0
                } else {
                    ((target - cum as f64) / n as f64).clamp(0.0, 1.0)
                };
                let est = lo + frac * (hi - lo);
                return est.clamp(self.min, self.max);
            }
            cum = next;
        }
        self.max
    }

    /// Median estimate (see [`Histogram::percentile`]).
    pub fn p50(&self) -> f64 {
        self.percentile(0.50)
    }

    /// 95th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p95(&self) -> f64 {
        self.percentile(0.95)
    }

    /// 99th-percentile estimate (see [`Histogram::percentile`]).
    pub fn p99(&self) -> f64 {
        self.percentile(0.99)
    }
}

// ------------------------------------------------------------- in-memory

/// Aggregate statistics for one span path.
#[derive(Debug, Clone, Copy, Default)]
pub struct SpanStat {
    /// How many times the span completed.
    pub count: u64,
    /// Total wall-clock seconds across completions.
    pub total_s: f64,
    /// Fastest single completion.
    pub min_s: f64,
    /// Slowest single completion.
    pub max_s: f64,
}

#[derive(Default)]
struct InMemoryInner {
    counters: BTreeMap<&'static str, u64>,
    gauges: BTreeMap<&'static str, f64>,
    histograms: BTreeMap<&'static str, Histogram>,
    spans: BTreeMap<String, SpanStat>,
}

/// A thread-safe recorder aggregating everything in memory, for tests and
/// for the bench harness's JSON metrics reports. Span stats aggregate by
/// path, so millions of span completions stay O(distinct paths) in memory.
#[derive(Default)]
pub struct InMemoryRecorder {
    inner: Mutex<InMemoryInner>,
}

impl InMemoryRecorder {
    /// Creates an empty recorder.
    pub fn new() -> Self {
        Self::default()
    }

    /// Copies out everything recorded so far.
    pub fn snapshot(&self) -> MetricsSnapshot {
        let inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        MetricsSnapshot {
            counters: inner
                .counters
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            gauges: inner
                .gauges
                .iter()
                .map(|(k, v)| (k.to_string(), *v))
                .collect(),
            histograms: inner
                .histograms
                .iter()
                .map(|(k, v)| (k.to_string(), v.clone()))
                .collect(),
            spans: inner.spans.iter().map(|(k, v)| (k.clone(), *v)).collect(),
        }
    }

    /// Discards everything recorded so far.
    pub fn reset(&self) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner = InMemoryInner::default();
    }
}

impl Recorder for InMemoryRecorder {
    fn counter(&self, name: &'static str, delta: u64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        *inner.counters.entry(name).or_insert(0) += delta;
    }

    fn gauge(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.gauges.insert(name, value);
    }

    fn observe(&self, name: &'static str, value: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        inner.histograms.entry(name).or_default().record(value);
    }

    fn span_complete(&self, path: &str, _name: &'static str, seconds: f64) {
        let mut inner = self.inner.lock().unwrap_or_else(|e| e.into_inner());
        let stat = inner.spans.entry(path.to_string()).or_insert(SpanStat {
            count: 0,
            total_s: 0.0,
            min_s: f64::INFINITY,
            max_s: f64::NEG_INFINITY,
        });
        stat.count += 1;
        stat.total_s += seconds;
        stat.min_s = stat.min_s.min(seconds);
        stat.max_s = stat.max_s.max(seconds);
    }
}

// -------------------------------------------------------------- snapshot

/// A point-in-time copy of an [`InMemoryRecorder`]'s contents, ordered
/// deterministically (sorted by name/path), renderable as JSON.
#[derive(Debug, Clone, Default)]
pub struct MetricsSnapshot {
    /// Counter totals by name.
    pub counters: Vec<(String, u64)>,
    /// Gauge values by name.
    pub gauges: Vec<(String, f64)>,
    /// Histograms by name.
    pub histograms: Vec<(String, Histogram)>,
    /// Span statistics by slash-joined path.
    pub spans: Vec<(String, SpanStat)>,
}

impl MetricsSnapshot {
    /// The counter's total, or 0 if never incremented.
    pub fn counter(&self, name: &str) -> u64 {
        self.counters
            .iter()
            .find(|(k, _)| k == name)
            .map_or(0, |(_, v)| *v)
    }

    /// The gauge's last value, if ever set.
    pub fn gauge(&self, name: &str) -> Option<f64> {
        self.gauges.iter().find(|(k, _)| k == name).map(|(_, v)| *v)
    }

    /// The histogram by name, if any values were observed.
    pub fn histogram(&self, name: &str) -> Option<&Histogram> {
        self.histograms
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v)
    }

    /// The span stats for an exact path, if that span ever completed.
    pub fn span(&self, path: &str) -> Option<&SpanStat> {
        self.spans.iter().find(|(k, _)| k == path).map(|(_, v)| v)
    }

    /// Total seconds across all spans whose path equals `path` or starts
    /// with `path` followed by `/` — i.e. a subtree's own root time.
    pub fn span_total_seconds(&self, path: &str) -> f64 {
        self.spans
            .iter()
            .filter(|(k, _)| k == path)
            .map(|(_, v)| v.total_s)
            .sum()
    }

    /// Renders the snapshot as pretty-printed JSON. Zero-dependency by
    /// design: this crate must stay usable from every layer without
    /// pulling serde into the dependency graph.
    pub fn to_json(&self) -> String {
        let mut out = String::with_capacity(4096);
        out.push_str("{\n  \"counters\": {");
        for (i, (k, v)) in self.counters.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_json_str(&mut out, k);
            out.push_str(&format!(": {v}"));
        }
        close_obj(&mut out, !self.counters.is_empty(), "  ");
        out.push_str(",\n  \"gauges\": {");
        for (i, (k, v)) in self.gauges.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_json_str(&mut out, k);
            out.push_str(": ");
            push_json_f64(&mut out, *v);
        }
        close_obj(&mut out, !self.gauges.is_empty(), "  ");
        out.push_str(",\n  \"histograms\": {");
        for (i, (k, h)) in self.histograms.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_json_str(&mut out, k);
            out.push_str(&format!(": {{\"count\": {}, \"sum\": ", h.count));
            push_json_f64(&mut out, h.sum);
            out.push_str(", \"mean\": ");
            push_json_f64(&mut out, h.mean());
            out.push_str(", \"min\": ");
            push_json_f64(&mut out, if h.count == 0 { 0.0 } else { h.min });
            out.push_str(", \"max\": ");
            push_json_f64(&mut out, if h.count == 0 { 0.0 } else { h.max });
            out.push_str(", \"p50\": ");
            push_json_f64(&mut out, h.p50());
            out.push_str(", \"p95\": ");
            push_json_f64(&mut out, h.p95());
            out.push_str(", \"p99\": ");
            push_json_f64(&mut out, h.p99());
            out.push_str(", \"log2_buckets\": {");
            let mut first = true;
            for (b, &n) in h.buckets.iter().enumerate() {
                if n == 0 {
                    continue;
                }
                if !first {
                    out.push_str(", ");
                }
                first = false;
                out.push_str(&format!("\"{}\": {n}", b as i64 - 32));
            }
            out.push_str("}}");
        }
        close_obj(&mut out, !self.histograms.is_empty(), "  ");
        out.push_str(",\n  \"spans\": {");
        for (i, (k, s)) in self.spans.iter().enumerate() {
            push_sep(&mut out, i, "    ");
            push_json_str(&mut out, k);
            out.push_str(&format!(": {{\"count\": {}, \"total_s\": ", s.count));
            push_json_f64(&mut out, s.total_s);
            out.push_str(", \"min_s\": ");
            push_json_f64(&mut out, s.min_s);
            out.push_str(", \"max_s\": ");
            push_json_f64(&mut out, s.max_s);
            out.push('}');
        }
        close_obj(&mut out, !self.spans.is_empty(), "  ");
        out.push_str("\n}");
        out
    }
}

fn push_sep(out: &mut String, i: usize, indent: &str) {
    if i > 0 {
        out.push(',');
    }
    out.push('\n');
    out.push_str(indent);
}

fn close_obj(out: &mut String, had_entries: bool, indent: &str) {
    if had_entries {
        out.push('\n');
        out.push_str(indent);
    }
    out.push('}');
}

pub(crate) fn push_json_str(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

pub(crate) fn push_json_f64(out: &mut String, x: f64) {
    if x.is_finite() {
        out.push_str(&format!("{x:?}"));
    } else {
        out.push_str("null");
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Install/uninstall race protection: the global recorder is shared by
    /// every `#[test]` thread in this binary, so tests that install one
    /// serialize on this lock.
    static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

    #[test]
    fn histogram_bucketing_is_log2() {
        // Exact powers of two land in their own exponent's bucket...
        assert_eq!(Histogram::bucket_index(1.0), 32);
        assert_eq!(Histogram::bucket_index(2.0), 33);
        assert_eq!(Histogram::bucket_index(4.0), 34);
        // ...values in (2^k, 2^(k+1)) share bucket k...
        assert_eq!(Histogram::bucket_index(3.0), 33);
        assert_eq!(Histogram::bucket_index(0.75), 31);
        // ...and the edges clamp instead of overflowing.
        assert_eq!(Histogram::bucket_index(0.0), 0);
        assert_eq!(Histogram::bucket_index(-5.0), 0);
        assert_eq!(Histogram::bucket_index(1e-300), 0);
        assert_eq!(Histogram::bucket_index(1e300), 63);
        assert_eq!(Histogram::bucket_index(f64::NAN), 0);
        assert_eq!(Histogram::bucket_index(f64::INFINITY), 0);

        let (lo, hi) = Histogram::bucket_bounds(33);
        assert_eq!((lo, hi), (2.0, 4.0));

        let mut h = Histogram::default();
        for v in [1.0, 1.5, 3.0, 100.0] {
            h.record(v);
        }
        assert_eq!(h.count, 4);
        assert_eq!(h.buckets[32], 2); // 1.0 and 1.5
        assert_eq!(h.buckets[33], 1); // 3.0
        assert_eq!(h.buckets[38], 1); // 100.0 in [64, 128)
        assert_eq!(h.min, 1.0);
        assert_eq!(h.max, 100.0);
        assert!((h.mean() - 26.375).abs() < 1e-12);
    }

    #[test]
    fn percentiles_interpolate_within_buckets() {
        let empty = Histogram::default();
        assert_eq!(empty.p50(), 0.0);
        assert_eq!(empty.percentile(0.99), 0.0);

        // A single value: every percentile clamps to it exactly.
        let mut one = Histogram::default();
        one.record(5.0);
        assert_eq!(one.p50(), 5.0);
        assert_eq!(one.p99(), 5.0);

        // 100 values spread over [1, 2) ... [512, 1024): percentile walks
        // buckets in order and stays within the observed range.
        let mut h = Histogram::default();
        for i in 0..100u32 {
            h.record(2f64.powi((i % 10) as i32) * 1.5);
        }
        let (p50, p95, p99) = (h.p50(), h.p95(), h.p99());
        assert!(p50 >= h.min && p50 <= h.max);
        assert!(p95 >= p50 && p99 >= p95, "monotone: {p50} {p95} {p99}");
        assert!(p99 <= h.max);
        // The top decile lives in the [512, 1024) bucket.
        assert!(p95 >= 512.0, "p95 = {p95}");
        // p0/p100 clamp to the exact extremes.
        assert_eq!(h.percentile(0.0), h.min);
        assert_eq!(h.percentile(1.0), h.max);
    }

    #[test]
    fn snapshot_json_includes_percentiles() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(InMemoryRecorder::new());
        install(rec.clone());
        for v in [1.0, 2.0, 4.0, 8.0] {
            observe("pct.hist", v);
        }
        uninstall();
        let json = rec.snapshot().to_json();
        for needle in ["\"p50\":", "\"p95\":", "\"p99\":"] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
    }

    #[test]
    fn spans_nest_into_slash_paths() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(InMemoryRecorder::new());
        install(rec.clone());
        {
            let _a = span("outer");
            {
                let _b = span("inner");
                let _c = span("leaf");
            }
            {
                let _b2 = span("inner");
            }
        }
        uninstall();
        let snap = rec.snapshot();
        assert_eq!(snap.span("outer").unwrap().count, 1);
        assert_eq!(snap.span("outer/inner").unwrap().count, 2);
        assert_eq!(snap.span("outer/inner/leaf").unwrap().count, 1);
        assert!(snap.span("inner").is_none(), "no orphan paths");
        let outer = snap.span("outer").unwrap();
        assert!(outer.total_s >= snap.span("outer/inner").unwrap().total_s);
    }

    #[test]
    fn recorder_swap_returns_previous_and_redirects_events() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let first = Arc::new(InMemoryRecorder::new());
        let second = Arc::new(InMemoryRecorder::new());

        assert!(install(first.clone()).is_none());
        counter("swap.test", 1);

        let prev = install(second.clone()).expect("first was installed");
        counter("swap.test", 10);
        prev.counter("swap.direct", 5); // returned handle still usable

        uninstall();
        counter("swap.test", 100); // no recorder: dropped

        assert_eq!(first.snapshot().counter("swap.test"), 1);
        assert_eq!(first.snapshot().counter("swap.direct"), 5);
        assert_eq!(second.snapshot().counter("swap.test"), 10);
        assert!(!enabled());
    }

    #[test]
    fn counters_gauges_and_histograms_aggregate() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(InMemoryRecorder::new());
        install(rec.clone());
        for i in 0..10 {
            counter("agg.events", 2);
            gauge("agg.level", i as f64);
            observe("agg.value", 2f64.powi(i));
        }
        uninstall();
        let snap = rec.snapshot();
        assert_eq!(snap.counter("agg.events"), 20);
        assert_eq!(snap.gauge("agg.level"), Some(9.0));
        let h = snap.histogram("agg.value").unwrap();
        assert_eq!(h.count, 10);
        for i in 0..10 {
            assert_eq!(h.buckets[32 + i], 1, "bucket {i}");
        }
    }

    #[test]
    fn disabled_paths_report_nothing_and_spans_are_inert() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let _ = uninstall(); // ensure clean state
        counter("dead.counter", 1);
        let s = span("dead.span");
        assert_eq!(s.name(), "dead.span");
        drop(s);
        let rec = Arc::new(InMemoryRecorder::new());
        install(rec.clone());
        uninstall();
        let snap = rec.snapshot();
        assert!(snap.counters.is_empty());
        assert!(snap.spans.is_empty());
    }

    #[test]
    fn snapshot_json_is_well_formed_and_complete() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(InMemoryRecorder::new());
        install(rec.clone());
        counter("json.count", 3);
        gauge("json.gauge", 1.25);
        observe("json.hist", 3.0);
        {
            let _s = span("json_root");
            let _t = span("child");
        }
        uninstall();
        let json = rec.snapshot().to_json();
        for needle in [
            "\"counters\"",
            "\"json.count\": 3",
            "\"json.gauge\": 1.25",
            "\"json.hist\"",
            "\"log2_buckets\": {\"1\": 1}",
            "\"json_root/child\"",
            "\"total_s\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        // Balanced braces ⇒ structurally plausible JSON (the serde_json
        // shim can't be used here: zero dependencies).
        assert_eq!(
            json.matches('{').count(),
            json.matches('}').count(),
            "unbalanced braces:\n{json}"
        );
    }

    #[test]
    fn timer_measures_and_observes() {
        let _guard = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let rec = Arc::new(InMemoryRecorder::new());
        install(rec.clone());
        let t = Timer::start();
        std::hint::black_box((0..1000).sum::<u64>());
        let secs = t.observe_as("timer.test");
        uninstall();
        assert!(secs >= 0.0);
        assert_eq!(rec.snapshot().histogram("timer.test").unwrap().count, 1);
    }
}
