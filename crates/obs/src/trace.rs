//! Per-query structured tracing: span trees, decision provenance, and
//! executor scheduling timelines.
//!
//! The process-global [`Recorder`](crate::Recorder) aggregates *across*
//! queries; a [`TraceContext`] records *one* query's (or one pipeline
//! run's) story — which phases ran when, which candidate plans were scored
//! and why one was chosen, what the deployment gate saw, and which cluster
//! machines each executor stage actually ran on. The context is an explicit
//! value passed through the pipeline (never a thread-local or a global), so
//! callers decide exactly which work is audited and pay nothing elsewhere:
//! every traced entry point takes an `Option<&TraceContext>` and the `None`
//! path is a single branch.
//!
//! A finished trace exports two ways, both zero-dependency:
//!
//! * [`TraceContext::to_chrome_json`] — the Chrome trace-event format,
//!   loadable in `chrome://tracing` or <https://ui.perfetto.dev>. Wall-clock
//!   spans and decision instants render under pid 1 (one row per thread);
//!   the executor timeline renders under pid 2 with one row per cluster
//!   machine, on simulated time (1 tick = 1 ms of trace time).
//! * [`TraceContext::to_text_report`] — a terminal waterfall plus a decision
//!   audit and a per-stage scheduling summary.
//!
//! ```
//! use mcsim_obs::trace::TraceContext;
//!
//! let ctx = TraceContext::new("query 42");
//! {
//!     let opt = ctx.span("optimize");
//!     opt.attr("query_id", 42u64);
//!     let _explore = ctx.span("explore"); // nests under `optimize`
//! }
//! assert_eq!(ctx.span_count(), 2);
//! let json = ctx.to_chrome_json();
//! assert!(json.contains("\"traceEvents\""));
//! ```

use crate::{push_json_f64, push_json_str};
use std::sync::Mutex;
use std::thread::ThreadId;
use std::time::Instant;

// ------------------------------------------------------------- attributes

/// A span attribute value. Built via `From` impls so call sites can write
/// `span.attr("query_id", 42u64)`.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// A string attribute.
    Str(String),
    /// A float attribute.
    F64(f64),
    /// A signed integer attribute.
    I64(i64),
    /// An unsigned integer attribute (also used for ids/signatures).
    U64(u64),
    /// A boolean attribute.
    Bool(bool),
}

impl From<&str> for AttrValue {
    fn from(v: &str) -> Self {
        AttrValue::Str(v.to_string())
    }
}
impl From<String> for AttrValue {
    fn from(v: String) -> Self {
        AttrValue::Str(v)
    }
}
impl From<f64> for AttrValue {
    fn from(v: f64) -> Self {
        AttrValue::F64(v)
    }
}
impl From<i64> for AttrValue {
    fn from(v: i64) -> Self {
        AttrValue::I64(v)
    }
}
impl From<u64> for AttrValue {
    fn from(v: u64) -> Self {
        AttrValue::U64(v)
    }
}
impl From<usize> for AttrValue {
    fn from(v: usize) -> Self {
        AttrValue::U64(v as u64)
    }
}
impl From<bool> for AttrValue {
    fn from(v: bool) -> Self {
        AttrValue::Bool(v)
    }
}

impl AttrValue {
    fn push_json(&self, out: &mut String) {
        match self {
            AttrValue::Str(s) => push_json_str(out, s),
            AttrValue::F64(x) => push_json_f64(out, *x),
            AttrValue::I64(n) => out.push_str(&n.to_string()),
            AttrValue::U64(n) => out.push_str(&n.to_string()),
            AttrValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        }
    }
}

impl std::fmt::Display for AttrValue {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            AttrValue::Str(s) => f.write_str(s),
            AttrValue::F64(x) => write!(f, "{x:.4}"),
            AttrValue::I64(n) => write!(f, "{n}"),
            AttrValue::U64(n) => write!(f, "{n}"),
            AttrValue::Bool(b) => write!(f, "{b}"),
        }
    }
}

// ------------------------------------------------------------------ spans

/// One node of the trace's span tree.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span name (phase or operation).
    pub name: String,
    /// Index of the enclosing span, if any.
    pub parent: Option<usize>,
    /// Logical thread lane the span was opened on (0 = the context's first
    /// thread). Becomes the `tid` in Chrome export.
    pub track: u32,
    /// Start, microseconds since the context was created.
    pub start_us: u64,
    /// End, microseconds since the context was created; `None` while open.
    pub end_us: Option<u64>,
    /// Key/value attributes attached via [`TraceSpan::attr`].
    pub attrs: Vec<(String, AttrValue)>,
}

impl SpanNode {
    /// The span's duration in microseconds (`fallback_us` while still open).
    pub fn duration_us(&self, fallback_us: u64) -> u64 {
        self.end_us
            .unwrap_or(fallback_us.max(self.start_us))
            .saturating_sub(self.start_us)
    }
}

/// RAII guard for one traced span. Ends the span (records `end_us`) on
/// drop. Spans opened on the same thread while this guard lives become its
/// children.
#[must_use = "a trace span measures until dropped; binding it to `_` drops it immediately"]
pub struct TraceSpan<'a> {
    ctx: &'a TraceContext,
    id: usize,
}

impl TraceSpan<'_> {
    /// The span's index within the trace (stable; usable as a parent key).
    pub fn id(&self) -> usize {
        self.id
    }

    /// Attaches a key/value attribute to the span.
    pub fn attr(&self, key: &str, value: impl Into<AttrValue>) {
        let mut inner = self.ctx.lock();
        inner.spans[self.id]
            .attrs
            .push((key.to_string(), value.into()));
    }
}

impl Drop for TraceSpan<'_> {
    fn drop(&mut self) {
        let now = self.ctx.elapsed_us();
        let mut inner = self.ctx.lock();
        let track = inner.spans[self.id].track as usize;
        // Pop by identity: guards can legally be dropped out of order (e.g.
        // a Vec of guards drops front-to-back, parents first). Everything
        // above this span on its thread stack is a still-open descendant;
        // force-close it at the parent's end so the exported tree stays
        // well-nested — a child outliving its parent would otherwise render
        // as partially overlapping X events.
        let closed: Vec<usize> = match inner.threads.get_mut(track) {
            Some((_, stack)) => match stack.iter().rposition(|&s| s == self.id) {
                Some(pos) => stack.drain(pos..).collect(),
                None => Vec::new(), // already force-closed by an ancestor
            },
            None => Vec::new(),
        };
        for id in closed {
            inner.spans[id].end_us.get_or_insert(now);
        }
        inner.spans[self.id].end_us.get_or_insert(now);
    }
}

// -------------------------------------------------------------- decisions

/// One scored candidate inside a [`PlanSelection`] record.
#[derive(Debug, Clone, PartialEq)]
pub struct CandidateScore {
    /// Structural plan signature (`PlanSignature`-compatible fingerprint).
    pub signature: u64,
    /// The model's predicted cost for this candidate.
    pub predicted_cost: f64,
    /// True if this candidate is the native optimizer's default plan.
    pub is_default: bool,
}

/// How a guarded plan selection resolved.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum SelectionOutcome {
    /// The model already preferred the default plan.
    DefaultBest,
    /// A steered candidate beat the default by at least the margin.
    Accepted,
    /// The steered winner missed the confidence margin; fell back to the
    /// default plan.
    RejectedFallback,
}

impl SelectionOutcome {
    /// Stable lower-case label (used in exports).
    pub fn as_str(self) -> &'static str {
        match self {
            SelectionOutcome::DefaultBest => "default_best",
            SelectionOutcome::Accepted => "accepted",
            SelectionOutcome::RejectedFallback => "rejected_fallback",
        }
    }
}

/// Provenance of one guarded plan selection: every candidate's score, the
/// model's favourite, and what was actually chosen.
#[derive(Debug, Clone, PartialEq)]
pub struct PlanSelection {
    /// The steered query.
    pub query_id: u64,
    /// All scored candidates, in candidate-set order.
    pub candidates: Vec<CandidateScore>,
    /// Index of the native optimizer's default plan.
    pub default_idx: usize,
    /// Index of the model's cheapest prediction.
    pub best_idx: usize,
    /// Index of the plan actually chosen after the margin guard.
    pub chosen_idx: usize,
    /// The confidence margin the guard required.
    pub margin: f64,
    /// How the selection resolved.
    pub outcome: SelectionOutcome,
}

/// The deployment gate's verdict with its supporting evidence.
#[derive(Debug, Clone, PartialEq)]
pub struct GateVerdict {
    /// Average steered cost / average native cost.
    pub avg_ratio: f64,
    /// Worst per-query chosen/default cost ratio.
    pub worst_tail_ratio: f64,
    /// Fraction of queries regressing by more than 2 %.
    pub regression_fraction: f64,
    /// No-net-regression criterion.
    pub passes_avg: bool,
    /// Tail-risk criterion.
    pub passes_tail: bool,
    /// Regression-fraction criterion.
    pub passes_regressions: bool,
    /// The overall deployment decision.
    pub deploy: bool,
}

/// One project's rule-based filter outcome (Section 6, R1–R3).
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectFilter {
    /// The filtered project.
    pub project: u64,
    /// Average queries per day over the sampled window.
    pub n_query: f64,
    /// Mean day-over-day query-count ratio.
    pub query_inc_ratio: f64,
    /// Fraction of queries touching only long-lived tables.
    pub stable_table_ratio: f64,
    /// R1 (volume) outcome.
    pub passes_r1: bool,
    /// R2 (growth) outcome.
    pub passes_r2: bool,
    /// R3 (stability) outcome.
    pub passes_r3: bool,
    /// Conjunction of the three rules.
    pub selected: bool,
}

/// The Ranker's project ordering: `(project, score)` pairs, best first.
#[derive(Debug, Clone, PartialEq)]
pub struct ProjectRanking {
    /// Ranked projects with their mean estimated improvement space.
    pub scores: Vec<(u64, f64)>,
}

/// A recorded fallback with its human-readable reason.
#[derive(Debug, Clone, PartialEq)]
pub struct Fallback {
    /// The affected query.
    pub query_id: u64,
    /// Why the steered plan was not used.
    pub reason: String,
}

/// A typed decision record: why the pipeline did what it did.
#[derive(Debug, Clone, PartialEq)]
pub enum Decision {
    /// Guarded candidate-plan selection (candidate scores + chosen plan).
    PlanSelection(PlanSelection),
    /// Pre-deployment gate verdict with evidence.
    GateVerdict(GateVerdict),
    /// Rule-based project filter outcome.
    ProjectFilter(ProjectFilter),
    /// Learned Ranker project ordering.
    ProjectRanking(ProjectRanking),
    /// A fallback to the default plan, with its reason.
    Fallback(Fallback),
}

impl Decision {
    /// Stable event name used in exports (`decision.<kind>`).
    pub fn kind(&self) -> &'static str {
        match self {
            Decision::PlanSelection(_) => "decision.plan_selection",
            Decision::GateVerdict(_) => "decision.gate_verdict",
            Decision::ProjectFilter(_) => "decision.project_filter",
            Decision::ProjectRanking(_) => "decision.project_ranking",
            Decision::Fallback(_) => "decision.fallback",
        }
    }
}

// --------------------------------------------------------------- timeline

/// One executor stage's scheduling record: where it ran and for how long,
/// in simulated cluster time.
#[derive(Debug, Clone, PartialEq)]
pub struct StageExecEvent {
    /// Stage index within the plan's stage graph.
    pub stage: usize,
    /// Ids of the machines the stage's instances were placed on.
    pub machines: Vec<u32>,
    /// Cluster tick when the stage started running.
    pub start_tick: u64,
    /// Cluster tick when the stage finished.
    pub end_tick: u64,
    /// Parallel instances Fuxi allocated.
    pub instances: usize,
    /// Queueing multiplier the stage suffered.
    pub queue_wait_factor: f64,
    /// The stage's CPU cost contribution.
    pub cost: f64,
    /// Mean busy fraction of the stage's machines over its window.
    pub busy: f64,
    /// Which execution attempt this is (0 = first run, ≥ 1 = retry after a
    /// fault-injected kill).
    pub attempt: u32,
    /// True if the attempt was killed mid-flight by the fault injector; the
    /// event's cost is then the work wasted before the kill.
    pub killed: bool,
}

// ---------------------------------------------------------------- context

struct TraceInner {
    spans: Vec<SpanNode>,
    decisions: Vec<(u64, Decision)>,
    timeline: Vec<StageExecEvent>,
    /// Per-thread open-span stacks; the vector index is the thread's track.
    threads: Vec<(ThreadId, Vec<usize>)>,
}

/// A per-query (or per-run) trace: a span tree with attributes, typed
/// decision records, and an executor scheduling timeline.
///
/// Thread-safe — share a `&TraceContext` (or an `Arc`) across worker
/// threads freely; spans opened on different threads land on different
/// tracks and nest per thread.
pub struct TraceContext {
    label: String,
    started: Instant,
    inner: Mutex<TraceInner>,
}

impl TraceContext {
    /// Creates an empty trace labelled `label` (shown in exports).
    pub fn new(label: impl Into<String>) -> TraceContext {
        TraceContext {
            label: label.into(),
            started: Instant::now(),
            inner: Mutex::new(TraceInner {
                spans: Vec::new(),
                decisions: Vec::new(),
                timeline: Vec::new(),
                threads: Vec::new(),
            }),
        }
    }

    /// The trace's label.
    pub fn label(&self) -> &str {
        &self.label
    }

    /// Microseconds since the context was created.
    pub fn elapsed_us(&self) -> u64 {
        self.started.elapsed().as_micros() as u64
    }

    fn lock(&self) -> std::sync::MutexGuard<'_, TraceInner> {
        self.inner.lock().unwrap_or_else(|e| e.into_inner())
    }

    /// Opens a span named `name`, nested under the innermost span still
    /// open on the *current thread* (threads trace independent lanes).
    pub fn span(&self, name: impl Into<String>) -> TraceSpan<'_> {
        let start_us = self.elapsed_us();
        let tid = std::thread::current().id();
        let mut inner = self.lock();
        let track = match inner.threads.iter().position(|(t, _)| *t == tid) {
            Some(i) => i,
            None => {
                inner.threads.push((tid, Vec::new()));
                inner.threads.len() - 1
            }
        };
        let parent = inner.threads[track].1.last().copied();
        let id = inner.spans.len();
        inner.spans.push(SpanNode {
            name: name.into(),
            parent,
            track: track as u32,
            start_us,
            end_us: None,
            attrs: Vec::new(),
        });
        inner.threads[track].1.push(id);
        TraceSpan { ctx: self, id }
    }

    /// Records a typed decision at the current trace time.
    pub fn decision(&self, d: Decision) {
        let at = self.elapsed_us();
        self.lock().decisions.push((at, d));
    }

    /// Records one executor stage's scheduling event.
    pub fn stage_event(&self, ev: StageExecEvent) {
        self.lock().timeline.push(ev);
    }

    /// Number of spans recorded so far (open or closed).
    pub fn span_count(&self) -> usize {
        self.lock().spans.len()
    }

    /// Number of decision records so far.
    pub fn decision_count(&self) -> usize {
        self.lock().decisions.len()
    }

    /// Number of executor stage events so far.
    pub fn timeline_len(&self) -> usize {
        self.lock().timeline.len()
    }

    /// Copies out the decision records, in recording order.
    pub fn decisions(&self) -> Vec<Decision> {
        self.lock()
            .decisions
            .iter()
            .map(|(_, d)| d.clone())
            .collect()
    }

    /// Copies out the span tree, in creation order.
    pub fn spans(&self) -> Vec<SpanNode> {
        self.lock().spans.clone()
    }

    /// Copies out the executor timeline, in recording order.
    pub fn timeline(&self) -> Vec<StageExecEvent> {
        self.lock().timeline.clone()
    }

    // ------------------------------------------------------ chrome export

    /// Renders the trace in Chrome trace-event JSON (the `{"traceEvents":
    /// [...]}` object form). Load the output in `chrome://tracing` or
    /// Perfetto. Zero-dependency, like
    /// [`MetricsSnapshot::to_json`](crate::MetricsSnapshot::to_json).
    ///
    /// Layout: pid 1 carries wall-clock span (`ph:"X"`) and decision
    /// (`ph:"I"`) events, one `tid` per traced thread; pid 2 carries the
    /// executor timeline on simulated time (1 cluster tick = 1 ms), one
    /// `tid` per cluster machine.
    pub fn to_chrome_json(&self) -> String {
        let now_us = self.elapsed_us();
        let inner = self.lock();
        let mut out = String::with_capacity(4096);
        out.push_str("{\"displayTimeUnit\":\"ms\",\"otherData\":{\"label\":");
        push_json_str(&mut out, &self.label);
        out.push_str("},\"traceEvents\":[");
        let mut first = true;

        // Process/thread metadata. Every event carries the same key set
        // (name/cat/ph/pid/tid/ts/dur/args) so consumers can parse a single
        // uniform shape.
        let meta = |out: &mut String, first: &mut bool, pid: u32, tid: u64, kind, name: &str| {
            push_event_prefix(out, first, kind, "__metadata", "M", pid, tid, 0, 0);
            out.push_str(",\"args\":{\"name\":");
            push_json_str(out, name);
            out.push_str("}}");
        };
        meta(
            &mut out,
            &mut first,
            1,
            0,
            "process_name",
            "pipeline (wall clock)",
        );
        meta(
            &mut out,
            &mut first,
            2,
            0,
            "process_name",
            "executor cluster (sim time: 1 tick = 1ms)",
        );
        for (i, _) in inner.threads.iter().enumerate() {
            meta(
                &mut out,
                &mut first,
                1,
                i as u64,
                "thread_name",
                &format!("thread {i}"),
            );
        }
        let mut machine_ids: Vec<u32> = inner
            .timeline
            .iter()
            .flat_map(|ev| ev.machines.iter().copied())
            .collect();
        machine_ids.sort_unstable();
        machine_ids.dedup();
        for &m in &machine_ids {
            meta(
                &mut out,
                &mut first,
                2,
                m as u64,
                "thread_name",
                &format!("machine {m}"),
            );
        }

        // Wall-clock spans as complete ("X") events.
        for s in &inner.spans {
            push_event_prefix(
                &mut out,
                &mut first,
                &s.name,
                "span",
                "X",
                1,
                s.track as u64,
                s.start_us,
                s.duration_us(now_us),
            );
            out.push_str(",\"args\":{");
            for (i, (k, v)) in s.attrs.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                push_json_str(&mut out, k);
                out.push(':');
                v.push_json(&mut out);
            }
            out.push_str("}}");
        }

        // Decisions as instant ("I") events.
        for (at_us, d) in &inner.decisions {
            push_event_prefix(
                &mut out,
                &mut first,
                d.kind(),
                "decision",
                "I",
                1,
                0,
                *at_us,
                0,
            );
            out.push_str(",\"s\":\"p\",\"args\":");
            push_decision_args(&mut out, d);
            out.push('}');
        }

        // Executor timeline: one complete event per (stage, machine), on
        // simulated time (1 tick rendered as 1 ms = 1000 µs of trace time).
        for ev in &inner.timeline {
            let ts = ev.start_tick * 1000;
            let dur = (ev.end_tick.saturating_sub(ev.start_tick)).max(1) * 1000;
            let name = if ev.killed {
                format!("stage {} (killed)", ev.stage)
            } else {
                format!("stage {}", ev.stage)
            };
            for &m in &ev.machines {
                push_event_prefix(
                    &mut out, &mut first, &name, "executor", "X", 2, m as u64, ts, dur,
                );
                out.push_str(",\"args\":{\"stage\":");
                out.push_str(&ev.stage.to_string());
                out.push_str(",\"machine\":");
                out.push_str(&m.to_string());
                out.push_str(",\"instances\":");
                out.push_str(&ev.instances.to_string());
                out.push_str(",\"start_tick\":");
                out.push_str(&ev.start_tick.to_string());
                out.push_str(",\"end_tick\":");
                out.push_str(&ev.end_tick.to_string());
                out.push_str(",\"queue_wait_factor\":");
                push_json_f64(&mut out, ev.queue_wait_factor);
                out.push_str(",\"cost\":");
                push_json_f64(&mut out, ev.cost);
                out.push_str(",\"busy\":");
                push_json_f64(&mut out, ev.busy);
                out.push_str(",\"attempt\":");
                out.push_str(&ev.attempt.to_string());
                out.push_str(",\"killed\":");
                out.push_str(if ev.killed { "true" } else { "false" });
                out.push_str("}}");
            }
        }

        out.push_str("]}");
        out
    }

    // -------------------------------------------------------- text report

    /// Renders the trace as a compact text report: a per-thread span
    /// waterfall, the decision audit, and the executor stage timeline.
    pub fn to_text_report(&self) -> String {
        let now_us = self.elapsed_us();
        let inner = self.lock();
        let mut out = String::with_capacity(2048);
        out.push_str(&format!("=== trace: {} ===\n", self.label));
        out.push_str(&format!(
            "spans: {}   decisions: {}   executor stage events: {}\n",
            inner.spans.len(),
            inner.decisions.len(),
            inner.timeline.len()
        ));

        // Waterfall: depth-first over the span forest, creation order.
        out.push_str("\n-- waterfall --\n");
        let mut children: Vec<Vec<usize>> = vec![Vec::new(); inner.spans.len()];
        let mut roots: Vec<usize> = Vec::new();
        for (i, s) in inner.spans.iter().enumerate() {
            match s.parent {
                Some(p) => children[p].push(i),
                None => roots.push(i),
            }
        }
        let mut stack: Vec<(usize, usize)> = roots.iter().rev().map(|&r| (r, 0)).collect();
        while let Some((id, depth)) = stack.pop() {
            let s = &inner.spans[id];
            let ms = s.duration_us(now_us) as f64 / 1000.0;
            let mut line = format!(
                "[{:>10.3} ms {:>+10.3} ms] {}{}",
                s.start_us as f64 / 1000.0,
                ms,
                "  ".repeat(depth),
                s.name
            );
            if s.track != 0 {
                line.push_str(&format!(" (thread {})", s.track));
            }
            if !s.attrs.is_empty() {
                let attrs: Vec<String> = s.attrs.iter().map(|(k, v)| format!("{k}={v}")).collect();
                line.push_str(&format!("  ({})", attrs.join(", ")));
            }
            if s.end_us.is_none() {
                line.push_str("  [open]");
            }
            out.push_str(&line);
            out.push('\n');
            for &c in children[id].iter().rev() {
                stack.push((c, depth + 1));
            }
        }

        // Decision audit.
        out.push_str("\n-- decision audit --\n");
        if inner.decisions.is_empty() {
            out.push_str("(no decisions recorded)\n");
        }
        for (at_us, d) in &inner.decisions {
            let at = *at_us as f64 / 1000.0;
            match d {
                Decision::PlanSelection(p) => {
                    let best = &p.candidates[p.best_idx];
                    let default = &p.candidates[p.default_idx];
                    out.push_str(&format!(
                        "[{at:>10.3} ms] plan-selection q{}: {} candidates; default #{} \
                         (sig {:#018x}, pred {:.3}); best #{} (sig {:#018x}, pred {:.3}); \
                         chosen #{} — {} (margin {:.2})\n",
                        p.query_id,
                        p.candidates.len(),
                        p.default_idx,
                        default.signature,
                        default.predicted_cost,
                        p.best_idx,
                        best.signature,
                        best.predicted_cost,
                        p.chosen_idx,
                        p.outcome.as_str(),
                        p.margin,
                    ));
                }
                Decision::GateVerdict(g) => {
                    out.push_str(&format!(
                        "[{at:>10.3} ms] gate: avg_ratio {:.4} ({}), tail {:.3} ({}), \
                         regressions {:.1}% ({}) → {}\n",
                        g.avg_ratio,
                        pass(g.passes_avg),
                        g.worst_tail_ratio,
                        pass(g.passes_tail),
                        100.0 * g.regression_fraction,
                        pass(g.passes_regressions),
                        if g.deploy { "DEPLOY" } else { "HOLD" },
                    ));
                }
                Decision::ProjectFilter(f) => {
                    out.push_str(&format!(
                        "[{at:>10.3} ms] filter project {}: n_query {:.1} ({}), \
                         inc_ratio {:.3} ({}), stable {:.3} ({}) → {}\n",
                        f.project,
                        f.n_query,
                        pass(f.passes_r1),
                        f.query_inc_ratio,
                        pass(f.passes_r2),
                        f.stable_table_ratio,
                        pass(f.passes_r3),
                        if f.selected { "selected" } else { "excluded" },
                    ));
                }
                Decision::ProjectRanking(r) => {
                    let entries: Vec<String> = r
                        .scores
                        .iter()
                        .enumerate()
                        .map(|(i, (p, s))| format!("#{} project {} ({:.4})", i + 1, p, s))
                        .collect();
                    out.push_str(&format!(
                        "[{at:>10.3} ms] ranking: {}\n",
                        entries.join(", ")
                    ));
                }
                Decision::Fallback(fb) => {
                    out.push_str(&format!(
                        "[{at:>10.3} ms] fallback q{}: {}\n",
                        fb.query_id, fb.reason
                    ));
                }
            }
        }

        // Executor timeline.
        out.push_str("\n-- executor timeline (cluster ticks) --\n");
        if inner.timeline.is_empty() {
            out.push_str("(no stage events recorded)\n");
        }
        for ev in &inner.timeline {
            let shown: Vec<String> = ev.machines.iter().take(8).map(|m| m.to_string()).collect();
            let more = if ev.machines.len() > 8 {
                format!(" +{} more", ev.machines.len() - 8)
            } else {
                String::new()
            };
            let mut fate = String::new();
            if ev.attempt > 0 {
                fate.push_str(&format!(" (attempt {})", ev.attempt + 1));
            }
            if ev.killed {
                fate.push_str(" KILLED");
            }
            out.push_str(&format!(
                "stage {:>3}: ticks {}..{} ({} tick{}), {} instance{} on machines [{}{}], \
                 queue ×{:.3}, busy {:.3}, cost {:.1}{fate}\n",
                ev.stage,
                ev.start_tick,
                ev.end_tick,
                ev.end_tick.saturating_sub(ev.start_tick).max(1),
                if ev.end_tick.saturating_sub(ev.start_tick).max(1) == 1 {
                    ""
                } else {
                    "s"
                },
                ev.instances,
                if ev.instances == 1 { "" } else { "s" },
                shown.join(","),
                more,
                ev.queue_wait_factor,
                ev.busy,
                ev.cost,
            ));
        }
        out
    }
}

fn pass(b: bool) -> &'static str {
    if b {
        "pass"
    } else {
        "FAIL"
    }
}

/// Writes the shared key prefix of one trace event (without closing the
/// object): `{"name":…,"cat":…,"ph":…,"pid":…,"tid":…,"ts":…,"dur":…`.
#[allow(clippy::too_many_arguments)]
fn push_event_prefix(
    out: &mut String,
    first: &mut bool,
    name: &str,
    cat: &str,
    ph: &str,
    pid: u32,
    tid: u64,
    ts: u64,
    dur: u64,
) {
    if !*first {
        out.push(',');
    }
    *first = false;
    out.push_str("\n{\"name\":");
    push_json_str(out, name);
    out.push_str(",\"cat\":");
    push_json_str(out, cat);
    out.push_str(",\"ph\":");
    push_json_str(out, ph);
    out.push_str(&format!(
        ",\"pid\":{pid},\"tid\":{tid},\"ts\":{ts},\"dur\":{dur}"
    ));
}

fn push_decision_args(out: &mut String, d: &Decision) {
    match d {
        Decision::PlanSelection(p) => {
            out.push_str(&format!(
                "{{\"query_id\":{},\"default_idx\":{},\"best_idx\":{},\"chosen_idx\":{},\
                 \"margin\":",
                p.query_id, p.default_idx, p.best_idx, p.chosen_idx
            ));
            push_json_f64(out, p.margin);
            out.push_str(",\"outcome\":");
            push_json_str(out, p.outcome.as_str());
            out.push_str(",\"candidates\":[");
            for (i, c) in p.candidates.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str("{\"signature\":");
                // Signatures exceed 2^53: render as hex strings so JSON
                // consumers keep every bit.
                push_json_str(out, &format!("{:#018x}", c.signature));
                out.push_str(",\"predicted_cost\":");
                push_json_f64(out, c.predicted_cost);
                out.push_str(&format!(",\"is_default\":{}}}", c.is_default));
            }
            out.push_str("]}");
        }
        Decision::GateVerdict(g) => {
            out.push_str("{\"avg_ratio\":");
            push_json_f64(out, g.avg_ratio);
            out.push_str(",\"worst_tail_ratio\":");
            push_json_f64(out, g.worst_tail_ratio);
            out.push_str(",\"regression_fraction\":");
            push_json_f64(out, g.regression_fraction);
            out.push_str(&format!(
                ",\"passes_avg\":{},\"passes_tail\":{},\"passes_regressions\":{},\
                 \"deploy\":{}}}",
                g.passes_avg, g.passes_tail, g.passes_regressions, g.deploy
            ));
        }
        Decision::ProjectFilter(f) => {
            out.push_str(&format!("{{\"project\":{},\"n_query\":", f.project));
            push_json_f64(out, f.n_query);
            out.push_str(",\"query_inc_ratio\":");
            push_json_f64(out, f.query_inc_ratio);
            out.push_str(",\"stable_table_ratio\":");
            push_json_f64(out, f.stable_table_ratio);
            out.push_str(&format!(
                ",\"passes_r1\":{},\"passes_r2\":{},\"passes_r3\":{},\"selected\":{}}}",
                f.passes_r1, f.passes_r2, f.passes_r3, f.selected
            ));
        }
        Decision::ProjectRanking(r) => {
            out.push_str("{\"ranked\":[");
            for (i, (p, s)) in r.scores.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                out.push_str(&format!("{{\"project\":{p},\"score\":"));
                push_json_f64(out, *s);
                out.push('}');
            }
            out.push_str("]}");
        }
        Decision::Fallback(fb) => {
            out.push_str(&format!("{{\"query_id\":{},\"reason\":", fb.query_id));
            push_json_str(out, &fb.reason);
            out.push('}');
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn spans_nest_per_thread_and_record_attrs() {
        let ctx = TraceContext::new("t");
        {
            let outer = ctx.span("outer");
            outer.attr("query_id", 42u64);
            {
                let _inner = ctx.span("inner");
                let _leaf = ctx.span("leaf");
            }
            let _sibling = ctx.span("sibling");
        }
        let spans = ctx.spans();
        assert_eq!(spans.len(), 4);
        assert_eq!(spans[0].name, "outer");
        assert_eq!(spans[0].parent, None);
        assert_eq!(spans[1].parent, Some(0), "inner under outer");
        assert_eq!(spans[2].parent, Some(1), "leaf under inner");
        assert_eq!(spans[3].parent, Some(0), "sibling under outer");
        assert!(spans.iter().all(|s| s.end_us.is_some()));
        assert_eq!(spans[0].attrs[0].0, "query_id");
        assert_eq!(spans[0].attrs[0].1, AttrValue::U64(42));
        // Parent interval contains the child interval.
        assert!(spans[1].start_us >= spans[0].start_us);
        assert!(spans[1].end_us.unwrap() <= spans[0].end_us.unwrap());
    }

    #[test]
    fn cross_thread_spans_get_distinct_tracks() {
        let ctx = TraceContext::new("threads");
        let _main = ctx.span("main");
        std::thread::scope(|s| {
            s.spawn(|| {
                let worker = ctx.span("worker");
                worker.attr("lane", "w1");
            });
        });
        let spans = ctx.spans();
        let worker = spans.iter().find(|s| s.name == "worker").unwrap();
        assert_eq!(spans[0].track, 0);
        assert_ne!(worker.track, 0, "worker thread must get its own track");
        assert_eq!(worker.parent, None, "worker span roots its own lane");
    }

    #[test]
    fn decisions_and_timeline_are_recorded_in_order() {
        let ctx = TraceContext::new("d");
        ctx.decision(Decision::GateVerdict(GateVerdict {
            avg_ratio: 0.9,
            worst_tail_ratio: 1.5,
            regression_fraction: 0.1,
            passes_avg: true,
            passes_tail: true,
            passes_regressions: true,
            deploy: true,
        }));
        ctx.decision(Decision::Fallback(Fallback {
            query_id: 7,
            reason: "margin not met".into(),
        }));
        ctx.stage_event(StageExecEvent {
            stage: 0,
            machines: vec![3, 5],
            start_tick: 100,
            end_tick: 103,
            instances: 2,
            queue_wait_factor: 1.2,
            cost: 10.0,
            busy: 0.4,
            attempt: 0,
            killed: false,
        });
        assert_eq!(ctx.decision_count(), 2);
        assert_eq!(ctx.timeline_len(), 1);
        let ds = ctx.decisions();
        assert!(matches!(ds[0], Decision::GateVerdict(_)));
        assert!(matches!(ds[1], Decision::Fallback(_)));
    }

    #[test]
    fn chrome_export_contains_all_event_classes() {
        let ctx = TraceContext::new("export");
        {
            let s = ctx.span("optimize");
            s.attr("query_id", 1u64);
        }
        ctx.decision(Decision::PlanSelection(PlanSelection {
            query_id: 1,
            candidates: vec![
                CandidateScore {
                    signature: 0xdead_beef,
                    predicted_cost: 10.0,
                    is_default: true,
                },
                CandidateScore {
                    signature: 0xfeed_f00d,
                    predicted_cost: 4.0,
                    is_default: false,
                },
            ],
            default_idx: 0,
            best_idx: 1,
            chosen_idx: 1,
            margin: 0.4,
            outcome: SelectionOutcome::Accepted,
        }));
        ctx.stage_event(StageExecEvent {
            stage: 2,
            machines: vec![11],
            start_tick: 50,
            end_tick: 52,
            instances: 1,
            queue_wait_factor: 1.0,
            cost: 5.0,
            busy: 0.3,
            attempt: 1,
            killed: true,
        });
        let json = ctx.to_chrome_json();
        for needle in [
            "\"displayTimeUnit\":\"ms\"",
            "\"traceEvents\"",
            "\"optimize\"",
            "\"decision.plan_selection\"",
            "\"outcome\":\"accepted\"",
            "\"0x00000000deadbeef\"",
            "\"stage 2 (killed)\"",
            "\"killed\":true",
            "\"attempt\":1",
            "\"machine 11\"",
            "\"ph\":\"X\"",
            "\"ph\":\"I\"",
            "\"ph\":\"M\"",
        ] {
            assert!(json.contains(needle), "missing {needle} in:\n{json}");
        }
        assert_eq!(json.matches('{').count(), json.matches('}').count());
        assert_eq!(json.matches('[').count(), json.matches(']').count());
    }

    #[test]
    fn text_report_renders_waterfall_audit_and_timeline() {
        let ctx = TraceContext::new("report");
        {
            let _a = ctx.span("prepare");
            let _b = ctx.span("execute");
        }
        ctx.decision(Decision::ProjectFilter(ProjectFilter {
            project: 3,
            n_query: 120.0,
            query_inc_ratio: 1.02,
            stable_table_ratio: 0.7,
            passes_r1: true,
            passes_r2: true,
            passes_r3: true,
            selected: true,
        }));
        ctx.stage_event(StageExecEvent {
            stage: 0,
            machines: (0..12).collect(),
            start_tick: 10,
            end_tick: 12,
            instances: 12,
            queue_wait_factor: 1.1,
            cost: 99.0,
            busy: 0.5,
            attempt: 0,
            killed: false,
        });
        let report = ctx.to_text_report();
        for needle in [
            "=== trace: report ===",
            "-- waterfall --",
            "prepare",
            "  execute",
            "-- decision audit --",
            "filter project 3",
            "selected",
            "-- executor timeline",
            "stage   0: ticks 10..12",
            "+4 more",
        ] {
            assert!(report.contains(needle), "missing {needle:?} in:\n{report}");
        }
    }

    #[test]
    fn open_spans_export_with_running_duration() {
        let ctx = TraceContext::new("open");
        let _open = ctx.span("still_running");
        let json = ctx.to_chrome_json();
        assert!(json.contains("\"still_running\""));
        let report = ctx.to_text_report();
        assert!(report.contains("[open]"));
    }

    #[test]
    fn dropping_a_parent_force_closes_open_children() {
        let ctx = TraceContext::new("ooo");
        let parent = ctx.span("parent");
        let child = ctx.span("child");
        drop(parent);
        std::thread::sleep(std::time::Duration::from_millis(2));
        drop(child); // late child drop must not extend past the parent
        let spans = ctx.spans();
        let p = spans.iter().find(|s| s.name == "parent").unwrap();
        let c = spans.iter().find(|s| s.name == "child").unwrap();
        assert_eq!(c.end_us, p.end_us, "child was closed with its parent");
        // The stack is clean: a new span roots at the top level again.
        drop(ctx.span("next"));
        assert!(ctx
            .spans()
            .iter()
            .any(|s| s.name == "next" && s.parent.is_none()));
    }
}
