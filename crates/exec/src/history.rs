//! Building per-project historical query repositories.
//!
//! Runs a project's daily workloads through the native optimizer and the
//! execution simulator, logging every execution — the data foundation LOAM
//! trains from (Section 2.1, step 4).

use crate::cluster::{Cluster, ClusterConfig, TICKS_PER_DAY};
use crate::execute::Executor;
use mcsim_catalog::repository::{ExecutionRecord, QueryRepository};
use mcsim_catalog::{Project, QuerySpec};
use mcsim_optimizer::{Knobs, NativeOptimizer};
use mcsim_plan::{PlanSignature, PlanTree};

/// Options for history generation.
#[derive(Debug, Clone)]
pub struct HistoryOptions {
    /// Days to simulate (queries on days `0..days`).
    pub days: i64,
    /// Hard cap on total logged queries (the paper caps training sets at
    /// 10,000; experiments at reduced scale cap lower).
    pub max_queries: usize,
    /// Cluster configuration for the production pool.
    pub cluster: ClusterConfig,
    /// Seed for the production cluster and noise.
    pub seed: u64,
}

impl Default for HistoryOptions {
    fn default() -> Self {
        HistoryOptions {
            days: 30,
            max_queries: usize::MAX,
            cluster: ClusterConfig::default(),
            seed: 0x1157,
        }
    }
}

/// Executes `project`'s workload day by day with the native optimizer's
/// default plans and logs everything into a repository.
///
/// Between queries the cluster advances so consecutive queries see different
/// environments; between days it advances the remainder of the day, so the
/// diurnal cycle is honoured.
pub fn build_history(project: &Project, opts: &HistoryOptions) -> QueryRepository {
    let cluster = Cluster::new(opts.seed, opts.cluster.clone());
    let mut executor = Executor::new(opts.seed, cluster, project.profile.env_noise_sigma);
    executor.cluster.advance(200); // warm-up
    let optimizer = NativeOptimizer::new(&project.catalog);

    let mut repo = QueryRepository::new();
    'outer: for day in 0..opts.days {
        let day_start_tick = executor.cluster.tick_count();
        let queries = project.workload_for_day(day);
        let per_query_gap = (TICKS_PER_DAY / (queries.len() as u64 + 1)).clamp(1, 120);
        for q in &queries {
            let plan = optimizer.optimize(q, &Knobs::default());
            let record = execute_and_log(&mut executor, project, q, plan, true);
            repo.push(record);
            if repo.len() >= opts.max_queries {
                break 'outer;
            }
            executor.cluster.advance(per_query_gap);
        }
        // Finish out the day.
        let elapsed = executor.cluster.tick_count() - day_start_tick;
        if elapsed < TICKS_PER_DAY {
            executor.cluster.advance(TICKS_PER_DAY - elapsed);
        }
    }
    repo
}

/// Executes one plan and produces its log record.
pub fn execute_and_log(
    executor: &mut Executor,
    project: &Project,
    query: &QuerySpec,
    plan: PlanTree,
    is_default: bool,
) -> ExecutionRecord {
    let outcome = executor.execute(&plan, &project.catalog);
    ExecutionRecord {
        query_id: query.id,
        template: query.template,
        project: project.id,
        day: query.day,
        signature: PlanSignature::of(&plan),
        plan,
        stage_envs: outcome.stage_envs,
        cpu_cost: outcome.cpu_cost,
        latency: outcome.latency,
        is_default,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::{ProjectId, ProjectProfile};

    #[test]
    fn history_logs_every_query_up_to_cap() {
        let mut prof = ProjectProfile::evaluation_project(1).unwrap();
        prof.n_tables = 15;
        prof.n_temp_tables = 2;
        prof.n_columns = 120;
        prof.n_templates = 8;
        prof.n_query_day0 = 20.0;
        let project = prof.generate(ProjectId(1));
        let repo = build_history(
            &project,
            &HistoryOptions {
                days: 3,
                max_queries: 50,
                ..HistoryOptions::default()
            },
        );
        assert_eq!(repo.len(), 50);
        assert!(repo.records().iter().all(|r| r.cpu_cost > 0.0));
        assert!(repo.records().iter().all(|r| r.is_default));
        // Recurring templates appear multiple times.
        let groups = repo.recurring_groups(2);
        assert!(!groups.is_empty());
    }

    #[test]
    fn history_spans_requested_days() {
        let mut prof = ProjectProfile::evaluation_project(1).unwrap();
        prof.n_tables = 12;
        prof.n_temp_tables = 2;
        prof.n_columns = 100;
        prof.n_templates = 6;
        prof.n_query_day0 = 5.0;
        let project = prof.generate(ProjectId(2));
        let repo = build_history(
            &project,
            &HistoryOptions {
                days: 4,
                ..HistoryOptions::default()
            },
        );
        let days: std::collections::BTreeSet<i64> = repo.records().iter().map(|r| r.day).collect();
        assert_eq!(days.into_iter().collect::<Vec<_>>(), vec![0, 1, 2, 3]);
    }
}
