//! Stage-by-stage plan execution with ground-truth cost physics.
//!
//! A plan's observed CPU cost is
//! `Σ_stages intrinsic_work(stage) × env_multiplier(stage) × noise`, where
//! the intrinsic work comes from exact cardinalities and the shared
//! [`mcsim_catalog::workmodel`], the environment multiplier from the loads of
//! the machines Fuxi allocated to the stage, and the noise is log-normal —
//! reproducing the up-to-50 % cost fluctuation of recurring queries
//! (Figure 1) and the log-normal fit of Appendix E.1 (Figure 15).

use crate::cluster::Cluster;
use crate::envmodel::EnvModel;
use crate::fault::{ExecFailure, RetryPolicy};
use crate::machine::std_normal;
use mcsim_catalog::workmodel::{operator_work, WorkContext, WorkParams};
use mcsim_catalog::{CardinalityModel, Catalog, EnvMetrics};
use mcsim_obs::trace::{StageExecEvent, TraceContext};
use mcsim_plan::op::{JoinAlgo, Operator};
use mcsim_plan::stage::{decompose, StageGraph};
use mcsim_plan::{NodeId, PlanSignature, PlanTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Result of one simulated execution.
#[derive(Debug, Clone, PartialEq)]
pub struct ExecutionOutcome {
    /// End-to-end CPU cost (the metric LOAM models).
    pub cpu_cost: f64,
    /// End-to-end latency (noisier than CPU cost, as the paper observes).
    pub latency: f64,
    /// Per-stage observed environment (metrics averaged over the stage's
    /// machines and execution window), indexed like the stage graph.
    pub stage_envs: Vec<EnvMetrics>,
    /// Per-stage CPU cost contribution (including wasted work from killed
    /// attempts, which the cluster still paid for).
    pub stage_costs: Vec<f64>,
    /// Total intrinsic work (cost before environment and noise).
    pub intrinsic_work: f64,
    /// How many stage retries the fault injector forced (0 when disabled).
    pub retries: u32,
    /// CPU cost burnt by killed attempts (0 when fault injection is off).
    pub wasted_cost: f64,
    /// Speculative backups launched against stragglers (0 when off).
    pub speculative_launches: u32,
}

/// The execution simulator: owns the cluster and the physics constants.
#[derive(Debug, Clone)]
pub struct Executor {
    /// The shared multi-tenant cluster.
    pub cluster: Cluster,
    /// Environment → cost coupling.
    pub env_model: EnvModel,
    /// Work-model constants (must match the ones the optimizer reasons
    /// with, so the native optimizer is wrong only through its inputs).
    pub params: WorkParams,
    /// Log-normal execution-noise σ (per-project, from the profile).
    pub noise_sigma: f64,
    /// Retry, speculation, and deadline policy (inert while the cluster's
    /// fault injection is disabled and no deadline is set).
    pub retry: RetryPolicy,
    rng: StdRng,
}

impl Executor {
    /// Creates an executor over a fresh cluster.
    pub fn new(seed: u64, cluster: Cluster, noise_sigma: f64) -> Self {
        Executor {
            cluster,
            env_model: EnvModel::default(),
            params: WorkParams::default(),
            noise_sigma,
            retry: RetryPolicy::default(),
            rng: StdRng::seed_from_u64(seed ^ 0xeeee_aaaa),
        }
    }

    /// Executes `plan` once, advancing the shared cluster, with a fresh
    /// random noise seed.
    ///
    /// Panics if fault injection makes the execution fail (impossible while
    /// it is disabled, which it is by default) — fault-armed callers should
    /// use [`Executor::try_execute`] instead.
    pub fn execute(&mut self, plan: &PlanTree, catalog: &Catalog) -> ExecutionOutcome {
        self.execute_traced(plan, catalog, None)
    }

    /// Fallible execution: like [`Executor::execute`] but surfaces retry
    /// exhaustion and deadline overruns as [`ExecFailure`] values instead of
    /// panicking. While fault injection is disabled this never fails.
    pub fn try_execute(
        &mut self,
        plan: &PlanTree,
        catalog: &Catalog,
    ) -> Result<ExecutionOutcome, ExecFailure> {
        self.try_execute_traced(plan, catalog, None)
    }

    /// Like [`Executor::execute`], but additionally emits a per-stage,
    /// per-machine scheduling timeline into `trace` (when `Some`): which
    /// machines Fuxi placed each stage on, over which cluster-tick window,
    /// with the stage's queueing factor and cost. Tracing does not perturb
    /// the simulation — costs are bit-identical with and without it.
    pub fn execute_traced(
        &mut self,
        plan: &PlanTree,
        catalog: &Catalog,
        trace: Option<&TraceContext>,
    ) -> ExecutionOutcome {
        let noise_seed = self.rng.gen::<u64>();
        self.try_execute_with_noise_seed_traced(plan, catalog, noise_seed, trace)
            .unwrap_or_else(|e| {
                panic!("execution failed under fault injection ({e}); use try_execute*")
            })
    }

    /// The fallible, traced flavour of [`Executor::execute_traced`].
    pub fn try_execute_traced(
        &mut self,
        plan: &PlanTree,
        catalog: &Catalog,
        trace: Option<&TraceContext>,
    ) -> Result<ExecutionOutcome, ExecFailure> {
        let noise_seed = self.rng.gen::<u64>();
        self.try_execute_with_noise_seed_traced(plan, catalog, noise_seed, trace)
    }

    /// Executes `plan` with an explicit noise seed, so that the cost under a
    /// fixed environment instance is deterministic per (environment, plan) —
    /// the `C_e(P)` of Section 5.
    pub fn execute_with_noise_seed(
        &mut self,
        plan: &PlanTree,
        catalog: &Catalog,
        noise_seed: u64,
    ) -> ExecutionOutcome {
        self.execute_with_noise_seed_traced(plan, catalog, noise_seed, None)
    }

    /// The infallible wrapper over the execution core (kept for the
    /// fault-free replay paths, which cannot fail).
    pub fn execute_with_noise_seed_traced(
        &mut self,
        plan: &PlanTree,
        catalog: &Catalog,
        noise_seed: u64,
        trace: Option<&TraceContext>,
    ) -> ExecutionOutcome {
        self.try_execute_with_noise_seed_traced(plan, catalog, noise_seed, trace)
            .unwrap_or_else(|e| {
                panic!("execution failed under fault injection ({e}); use try_execute*")
            })
    }

    /// The core of execution: stage-by-stage cost physics, plus — when the
    /// cluster's fault injection is armed — straggler slowdowns, speculative
    /// backups, mid-flight kills with exponential-backoff retries under a
    /// per-stage budget, and an optional per-query deadline. With faults
    /// disabled and no deadline this is bit-identical to the historical
    /// fault-free path: no extra RNG draws, a single attempt per stage.
    pub fn try_execute_with_noise_seed_traced(
        &mut self,
        plan: &PlanTree,
        catalog: &Catalog,
        noise_seed: u64,
        trace: Option<&TraceContext>,
    ) -> Result<ExecutionOutcome, ExecFailure> {
        let cards = CardinalityModel::new(catalog).annotate(plan);
        let stages = decompose(plan);
        let skewed = detect_skew(plan, &stages, catalog);
        mcsim_obs::counter("exec.queries_executed", 1);
        mcsim_obs::counter("exec.stages_executed", stages.len() as u64);

        let mut noise_rng = StdRng::seed_from_u64(noise_seed ^ PlanSignature::of(plan).0);

        let mut stage_envs = vec![EnvMetrics::default(); stages.len()];
        let mut stage_costs = vec![0.0; stages.len()];
        let mut total_work = 0.0;
        let mut latency = 0.0;
        let mut retries = 0u32;
        let mut wasted_cost = 0.0;
        let mut speculative_launches = 0u32;
        let faults_on = self.cluster.faults_enabled();
        let query_start_tick = self.cluster.tick_count();

        for s in stages.execution_order() {
            let stage = &stages.stages[s];
            // Intrinsic work of the stage.
            let work: f64 = stage
                .nodes
                .iter()
                .map(|&id| {
                    let n = plan.node(id);
                    let children: Vec<_> = n.children().map(|c| cards[c]).collect();
                    operator_work(
                        &n.op,
                        &cards[id],
                        &children,
                        WorkContext {
                            skewed_inputs: skewed[id],
                        },
                        &self.params,
                    )
                })
                .sum();
            total_work += work;

            // Fuxi allocation: parallel instances scale with work volume.
            let instances = ((work / 1.0e6).ceil() as usize).clamp(1, 256);
            let has_spool = stage
                .nodes
                .iter()
                .any(|&id| matches!(plan.op(id), Operator::Spool { .. }));
            let base_duration = (((work.max(1.0)).log10() - 3.0).ceil() as u64).clamp(1, 6);

            let mut attempt = 0u32;
            loop {
                // Each instance claims a modest slot share on its machines
                // for the stage's occupancy window.
                let machines = self.cluster.allocate(instances, 0.06);
                mcsim_obs::observe("exec.alloc.instances", instances as f64);

                // The stage runs for a work-dependent number of 20 s ticks;
                // its observed environment is the average over machines and
                // window. A straggling attempt holds its slots longer (the
                // simulated instances crawl) — unless a speculative backup
                // caps the slowdown at the policy threshold, for an extra
                // share of duplicated CPU work.
                let mut straggle = 1.0;
                let mut spec_this_attempt = false;
                if faults_on {
                    if let Some(mut factor) = self.cluster.sample_straggler(s, attempt) {
                        if self.retry.speculative && factor > self.retry.speculative_threshold {
                            self.cluster.record_speculative(s, attempt);
                            speculative_launches += 1;
                            spec_this_attempt = true;
                            mcsim_obs::counter("exec.retry.speculative_launches", 1);
                            factor = self.retry.speculative_threshold;
                        }
                        mcsim_obs::counter("exec.fault.stragglers", 1);
                        mcsim_obs::observe("exec.fault.straggle_factor", factor);
                        straggle = factor;
                    }
                }
                let duration = if straggle > 1.0 {
                    ((base_duration as f64 * straggle).ceil() as u64).clamp(1, 24)
                } else {
                    base_duration
                };

                let start_tick = self.cluster.tick_count();
                let mut window = Vec::with_capacity(duration as usize + 1);
                window.push(self.cluster.mean_load_of(&machines));
                for _ in 0..duration {
                    self.cluster.step();
                    window.push(self.cluster.mean_load_of(&machines));
                }
                let env = EnvMetrics::mean(window.iter());

                // Environment multiplier (spooled stages are dampened) +
                // noise.
                let (mult, sigma) = if has_spool {
                    (
                        self.env_model.spooled_multiplier(&env),
                        self.noise_sigma * 0.85,
                    )
                } else {
                    (self.env_model.multiplier(&env), self.noise_sigma)
                };
                let noise = (sigma * std_normal(&mut noise_rng) - 0.5 * sigma * sigma).exp();

                let mut cost = work * mult * noise * self.params.work_to_cost;
                if spec_this_attempt {
                    cost *= 1.0 + self.retry.speculative_overhead;
                }
                let queue = (0.5 * std_normal(&mut noise_rng)).exp();

                // Mid-flight kill: the attempt dies part-way through, its
                // partial work is burnt, and the stage retries after an
                // exponential backoff — until the retry budget runs out.
                if faults_on {
                    if let Some(progress) = self.cluster.sample_stage_kill(s, attempt) {
                        let wasted = cost * progress;
                        wasted_cost += wasted;
                        stage_costs[s] += wasted;
                        latency += wasted / instances as f64 * 1.2;
                        mcsim_obs::counter("exec.fault.stage_kills", 1);
                        mcsim_obs::observe("exec.fault.wasted_cost", wasted);
                        if let Some(t) = trace {
                            t.stage_event(StageExecEvent {
                                stage: s,
                                machines: self.cluster.machine_ids(&machines),
                                start_tick,
                                end_tick: self.cluster.tick_count(),
                                instances,
                                queue_wait_factor: queue,
                                cost: wasted,
                                busy: 1.0 - env.cpu_idle,
                                attempt,
                                killed: true,
                            });
                        }
                        if attempt >= self.retry.max_retries {
                            mcsim_obs::counter("exec.fault.stage_failures", 1);
                            return Err(ExecFailure::StageFailed {
                                stage: s,
                                attempts: attempt + 1,
                            });
                        }
                        let backoff = self.retry.backoff_ticks(attempt);
                        self.cluster.record_retry(s, attempt + 1, backoff);
                        self.cluster.advance(backoff);
                        mcsim_obs::counter("exec.retry.attempts", 1);
                        retries += 1;
                        attempt += 1;
                        continue;
                    }
                }

                stage_envs[s] = env;
                stage_costs[s] += cost;
                // Latency: stage wall time (stretched by any straggler)
                // plus queueing jitter.
                latency += cost / instances as f64 * 1.2 * queue * straggle;
                // Stage-granular observability (never per machine-tick):
                // the utilization of the machines this stage actually ran
                // on, and the queueing multiplier it suffered.
                mcsim_obs::observe("exec.stage.machine_busy", 1.0 - env.cpu_idle);
                mcsim_obs::observe("exec.stage.queue_wait_factor", queue);
                mcsim_obs::observe("exec.stage.cost", cost);
                if let Some(t) = trace {
                    t.stage_event(StageExecEvent {
                        stage: s,
                        machines: self.cluster.machine_ids(&machines),
                        start_tick,
                        end_tick: self.cluster.tick_count(),
                        instances,
                        queue_wait_factor: queue,
                        cost,
                        busy: 1.0 - env.cpu_idle,
                        attempt,
                        killed: false,
                    });
                }
                break;
            }

            if let Some(deadline) = self.retry.deadline_ticks {
                let elapsed = self.cluster.tick_count() - query_start_tick;
                if elapsed > deadline {
                    mcsim_obs::counter("exec.deadline.exceeded", 1);
                    return Err(ExecFailure::DeadlineExceeded {
                        deadline_ticks: deadline,
                        elapsed_ticks: elapsed,
                    });
                }
            }
        }
        if mcsim_obs::enabled() {
            // The estimate is exact at small pools and a fixed-size machine
            // sample at fleet scale — the gauge must not re-introduce an
            // O(machines) cost on every query.
            mcsim_obs::gauge(
                "exec.cluster.utilization",
                self.cluster.utilization_estimate(),
            );
        }

        Ok(ExecutionOutcome {
            cpu_cost: stage_costs.iter().sum(),
            latency,
            stage_envs,
            stage_costs,
            intrinsic_work: total_work,
            retries,
            wasted_cost,
            speculative_launches,
        })
    }

    /// The intrinsic (environment-free, noise-free) cost of a plan: the
    /// quantity an oracle with a neutral environment would pay. Useful for
    /// calibration and diagnostics.
    pub fn intrinsic_cost(&self, plan: &PlanTree, catalog: &Catalog) -> f64 {
        let cards = CardinalityModel::new(catalog).annotate(plan);
        let stages = decompose(plan);
        let skewed = detect_skew(plan, &stages, catalog);
        mcsim_catalog::workmodel::plan_work(
            plan,
            &cards,
            |id| WorkContext {
                skewed_inputs: skewed[id],
            },
            &self.params,
        ) * self.params.work_to_cost
    }
}

/// Detects joins whose shuffle was aggressively removed over a
/// mis-partitioned input: a hash/merge join child living in the *same* stage
/// (no exchange below it) whose join key on that side is not the primary key
/// of the underlying scan table suffers skew.
fn detect_skew(plan: &PlanTree, stages: &StageGraph, catalog: &Catalog) -> Vec<bool> {
    let mut skewed = vec![false; plan.len()];
    for (id, n) in plan.iter() {
        let Operator::Join {
            algo,
            left_keys,
            right_keys,
            ..
        } = &n.op
        else {
            continue;
        };
        if matches!(algo, JoinAlgo::Broadcast | JoinAlgo::NestedLoop) {
            continue; // broadcast reads the probe side in place by design
        }
        let sides = [(n.left, left_keys), (n.right, right_keys)];
        for (child, keys) in sides {
            let Some(child) = child else { continue };
            // An exchange (possibly under a spool) feeds this side: fine.
            if feeds_through_exchange(plan, child) {
                continue;
            }
            // Same stage means the shuffle was removed; check alignment.
            if stages.stage_of_node[child] == stages.stage_of_node[id] {
                let aligned = keys.iter().all(|&k| {
                    catalog
                        .column(k)
                        .and_then(|c| catalog.table(c.table).map(|t| c.ndv == t.rows))
                        .unwrap_or(false)
                });
                if !aligned {
                    skewed[id] = true;
                }
            }
        }
    }
    skewed
}

fn feeds_through_exchange(plan: &PlanTree, mut node: NodeId) -> bool {
    loop {
        match plan.op(node) {
            Operator::Exchange { .. } => return true,
            Operator::Spool { .. } => match plan.node(node).left {
                Some(c) => node = c,
                None => return false,
            },
            _ => return false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::ClusterConfig;
    use mcsim_catalog::{ProjectId, ProjectProfile};
    use mcsim_optimizer::{Knobs, NativeOptimizer, OptimizerFlags};

    fn setup() -> (mcsim_catalog::Project, Executor) {
        let mut prof = ProjectProfile::evaluation_project(1).unwrap();
        prof.n_tables = 25;
        prof.n_temp_tables = 3;
        prof.n_columns = 200;
        prof.n_templates = 15;
        let project = prof.generate(ProjectId(1));
        let cluster = Cluster::new(99, ClusterConfig::default());
        let exec = Executor::new(99, cluster, 0.2);
        (project, exec)
    }

    #[test]
    fn execution_produces_positive_costs_and_envs() {
        let (p, mut exec) = setup();
        let opt = NativeOptimizer::new(&p.catalog);
        for q in p.workload_for_day(0).iter().take(10) {
            let plan = opt.optimize(q, &Knobs::default());
            let out = exec.execute(&plan, &p.catalog);
            assert!(out.cpu_cost > 0.0);
            assert!(out.latency > 0.0);
            assert!(!out.stage_envs.is_empty());
            assert!((out.cpu_cost - out.stage_costs.iter().sum::<f64>()).abs() < 1e-9);
        }
    }

    #[test]
    fn recurring_query_costs_fluctuate() {
        let (p, mut exec) = setup();
        let opt = NativeOptimizer::new(&p.catalog);
        let q = &p.workload_for_day(0)[0];
        let plan = opt.optimize(q, &Knobs::default());
        let costs: Vec<f64> = (0..30)
            .map(|_| {
                exec.cluster.advance(20);
                exec.execute(&plan, &p.catalog).cpu_cost
            })
            .collect();
        let mean = costs.iter().sum::<f64>() / costs.len() as f64;
        let var = costs.iter().map(|c| (c - mean).powi(2)).sum::<f64>() / costs.len() as f64;
        let rsd = var.sqrt() / mean;
        assert!(rsd > 0.05, "costs should fluctuate, rsd={rsd}");
        assert!(rsd < 0.9, "but not absurdly, rsd={rsd}");
    }

    #[test]
    fn same_env_same_noise_seed_is_deterministic() {
        let (p, exec) = setup();
        let opt = NativeOptimizer::new(&p.catalog);
        let q = &p.workload_for_day(0)[0];
        let plan = opt.optimize(q, &Knobs::default());
        let mut e1 = exec.clone();
        let mut e2 = exec.clone();
        let a = e1.execute_with_noise_seed(&plan, &p.catalog, 42);
        let b = e2.execute_with_noise_seed(&plan, &p.catalog, 42);
        assert_eq!(a.cpu_cost, b.cpu_cost);
    }

    #[test]
    fn traced_execution_is_bit_identical_and_emits_timeline() {
        let (p, exec) = setup();
        let opt = NativeOptimizer::new(&p.catalog);
        let q = &p.workload_for_day(0)[0];
        let plan = opt.optimize(q, &Knobs::default());
        let mut plain = exec.clone();
        let mut traced = exec.clone();
        let ctx = TraceContext::new("exec test");
        let a = plain.execute_with_noise_seed(&plan, &p.catalog, 42);
        let b = traced.execute_with_noise_seed_traced(&plan, &p.catalog, 42, Some(&ctx));
        assert_eq!(a.cpu_cost, b.cpu_cost, "tracing must not perturb costs");
        let timeline = ctx.timeline();
        assert_eq!(timeline.len(), a.stage_costs.len(), "one event per stage");
        for ev in &timeline {
            assert!(!ev.machines.is_empty());
            assert!(ev.end_tick > ev.start_tick, "stages advance the cluster");
            assert!(ev.instances >= 1);
            assert!((ev.cost - a.stage_costs[ev.stage]).abs() < 1e-12);
        }
    }

    #[test]
    fn busier_cluster_costs_more_in_expectation() {
        let (p, _) = setup();
        let opt = NativeOptimizer::new(&p.catalog);
        let q = &p.workload_for_day(0)[0];
        let plan = opt.optimize(q, &Knobs::default());
        let run = |base_busy: f64| {
            let cluster = Cluster::new(
                7,
                ClusterConfig {
                    base_busy,
                    diurnal_amplitude: 0.0,
                    ..ClusterConfig::default()
                },
            );
            let mut exec = Executor::new(7, cluster, 0.1);
            exec.cluster.advance(50);
            let costs: Vec<f64> = (0..15)
                .map(|_| exec.execute(&plan, &p.catalog).cpu_cost)
                .collect();
            costs.iter().sum::<f64>() / costs.len() as f64
        };
        let quiet = run(0.15);
        let busy = run(0.85);
        assert!(busy > quiet * 1.15, "busy {busy} vs quiet {quiet}");
    }

    #[test]
    fn removed_shuffle_on_non_pk_key_is_penalized() {
        let (p, exec) = setup();
        let opt = NativeOptimizer::new(&p.catalog);
        // Find a join query where shuffle removal actually removes exchanges.
        let knobs_removed = Knobs {
            flags: OptimizerFlags {
                aggressive_shuffle_removal: true,
                ..OptimizerFlags::default()
            },
            card_scale: 1.0,
        };
        let queries = p.workload_for_days(0, 3);
        let mut found_penalty = false;
        for q in queries.iter().filter(|q| q.table_count() >= 2).take(40) {
            let removed = opt.optimize(q, &knobs_removed);
            let skews = detect_skew(&removed, &decompose(&removed), &p.catalog);
            if skews.iter().any(|&s| s) {
                // Intrinsic cost with skew must exceed the default plan's
                // shuffle-free-but-aligned treatment of the same join.
                let default = opt.optimize(q, &Knobs::default());
                let c_removed = exec.intrinsic_cost(&removed, &p.catalog);
                let c_default = exec.intrinsic_cost(&default, &p.catalog);
                // Not always more expensive end-to-end (it saves exchanges),
                // but the skew flag must be wired through.
                found_penalty = true;
                let _ = (c_removed, c_default);
                break;
            }
        }
        assert!(found_penalty, "skew detection should fire on some queries");
    }

    #[test]
    fn intrinsic_cost_is_noise_free_lower_level_of_execute() {
        let (p, mut exec) = setup();
        let opt = NativeOptimizer::new(&p.catalog);
        let q = &p.workload_for_day(0)[0];
        let plan = opt.optimize(q, &Knobs::default());
        let intr = exec.intrinsic_cost(&plan, &p.catalog);
        let out = exec.execute(&plan, &p.catalog);
        // Executed cost = intrinsic × multiplier × noise ⇒ strictly above
        // intrinsic for multipliers > 1 and mild noise.
        assert!(out.cpu_cost > intr * 0.8);
        assert!((out.intrinsic_work * exec.params.work_to_cost - intr).abs() / intr < 1e-9);
    }
}
