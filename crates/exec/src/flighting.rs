//! The flighting environment: replaying plans for unbiased measurement.
//!
//! MaxCompute's flighting environment "can replay user query plans without
//! compromising privacy or disrupting the normal service of the user's
//! project" (Section 3). The simulator's version clones the executor so
//! replays never disturb the production cluster state, and offers a
//! *synchronized* mode that executes a whole candidate set under the same
//! environment instance — the `C_e(P_i)` samples needed to estimate the
//! deviance quantities of Section 5 and Appendix E.1.

use crate::cluster::{Cluster, ClusterConfig};
use crate::execute::{ExecutionOutcome, Executor};
use mcsim_catalog::Catalog;
use mcsim_plan::{PlanSignature, PlanTree};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// A flighting environment with its own isolated cluster.
#[derive(Debug, Clone)]
pub struct Flighting {
    executor: Executor,
    rng: StdRng,
}

impl Flighting {
    /// Creates a flighting environment.
    pub fn new(seed: u64, noise_sigma: f64) -> Self {
        let cluster = Cluster::new(seed ^ 0xf11c, ClusterConfig::default());
        let mut executor = Executor::new(seed ^ 0xf22c, cluster, noise_sigma);
        // Warm the cluster so history buffers and loads are realistic.
        executor.cluster.advance(120);
        Flighting {
            executor,
            rng: StdRng::seed_from_u64(seed ^ 0xf33c),
        }
    }

    /// Creates a flighting environment with a custom cluster configuration.
    pub fn with_cluster(seed: u64, noise_sigma: f64, config: ClusterConfig) -> Self {
        let cluster = Cluster::new(seed ^ 0xf11c, config);
        let mut executor = Executor::new(seed ^ 0xf22c, cluster, noise_sigma);
        executor.cluster.advance(120);
        Flighting {
            executor,
            rng: StdRng::seed_from_u64(seed ^ 0xf33c),
        }
    }

    /// Access to the underlying executor (read-only diagnostics).
    pub fn executor(&self) -> &Executor {
        &self.executor
    }

    /// Replays `plan` `rounds` times under independently evolving
    /// environments, returning each outcome. The shared cluster advances a
    /// random interval between rounds so environments decorrelate.
    pub fn replay(
        &mut self,
        plan: &PlanTree,
        catalog: &Catalog,
        rounds: usize,
    ) -> Vec<ExecutionOutcome> {
        mcsim_obs::counter("exec.flighting.replays", rounds as u64);
        (0..rounds)
            .map(|_| {
                self.executor.cluster.advance(self.rng.gen_range(5..60));
                self.executor.execute(plan, catalog)
            })
            .collect()
    }

    /// Replays every plan of a candidate set under the *same* sequence of
    /// environment instances: for each round the cluster state is snapshotted
    /// and every plan executes from that snapshot, with a per-(round, plan)
    /// deterministic noise seed. Returns `costs[round][plan]`.
    pub fn replay_synchronized(
        &mut self,
        plans: &[&PlanTree],
        catalog: &Catalog,
        rounds: usize,
    ) -> Vec<Vec<f64>> {
        self.replay_synchronized_traced(plans, catalog, rounds, None)
    }

    /// Like [`Flighting::replay_synchronized`], but additionally emits every
    /// replay's per-stage scheduling timeline into `trace` (when `Some`).
    /// Fan-out warning: the trace receives `rounds × plans × stages` events.
    pub fn replay_synchronized_traced(
        &mut self,
        plans: &[&PlanTree],
        catalog: &Catalog,
        rounds: usize,
        trace: Option<&mcsim_obs::trace::TraceContext>,
    ) -> Vec<Vec<f64>> {
        mcsim_obs::counter("exec.flighting.synchronized_rounds", rounds as u64);
        mcsim_obs::counter("exec.flighting.replays", (rounds * plans.len()) as u64);
        let mut out = Vec::with_capacity(rounds);
        for round in 0..rounds {
            self.executor.cluster.advance(self.rng.gen_range(10..80));
            let round_seed: u64 = self.rng.gen();
            let row: Vec<f64> = plans
                .iter()
                .map(|plan| {
                    // Same environment (cloned executor), per-plan noise
                    // deterministic in (round, plan).
                    let mut snapshot = self.executor.clone();
                    let seed = round_seed ^ PlanSignature::of(plan).0.rotate_left(17);
                    snapshot
                        .execute_with_noise_seed_traced(plan, catalog, seed, trace)
                        .cpu_cost
                })
                .collect();
            let _ = round;
            out.push(row);
        }
        out
    }

    /// Average cost of `plan` over `rounds` replays (convenience for
    /// evaluation: "each candidate plan is executed multiple times, and the
    /// average cost is used", Section 7.1).
    pub fn average_cost(&mut self, plan: &PlanTree, catalog: &Catalog, rounds: usize) -> f64 {
        let outs = self.replay(plan, catalog, rounds);
        outs.iter().map(|o| o.cpu_cost).sum::<f64>() / rounds.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::{ProjectId, ProjectProfile};
    use mcsim_optimizer::{Knobs, NativeOptimizer};

    /// The shared optimize-and-replay fixture: a small project, a flighting
    /// environment, and the default plan of the project's first query —
    /// everything the replay tests previously set up by hand, each slightly
    /// differently.
    fn fixture() -> (mcsim_catalog::Project, Flighting, PlanTree) {
        let mut prof = ProjectProfile::evaluation_project(1).unwrap();
        prof.n_tables = 20;
        prof.n_temp_tables = 2;
        prof.n_columns = 160;
        prof.n_templates = 10;
        let project = prof.generate(ProjectId(1));
        let opt = NativeOptimizer::new(&project.catalog);
        let plan = opt.optimize(&project.workload_for_day(0)[0], &Knobs::default());
        (project, Flighting::new(5, 0.2), plan)
    }

    #[test]
    fn replay_returns_requested_rounds() {
        let (p, mut fl, plan) = fixture();
        let outs = fl.replay(&plan, &p.catalog, 7);
        assert_eq!(outs.len(), 7);
        // Environments vary between rounds.
        let costs: Vec<f64> = outs.iter().map(|o| o.cpu_cost).collect();
        let all_same = costs.windows(2).all(|w| w[0] == w[1]);
        assert!(!all_same);
    }

    #[test]
    fn synchronized_replay_shares_environment_within_round() {
        let (p, mut fl, plan) = fixture();
        // Same plan listed twice must yield the exact same cost each round
        // (same environment snapshot + same deterministic noise seed).
        let costs = fl.replay_synchronized(&[&plan, &plan], &p.catalog, 5);
        for row in &costs {
            assert_eq!(row[0], row[1]);
        }
    }

    #[test]
    fn replays_do_not_disturb_each_other_across_plans() {
        let (p, mut fl, plan_a) = fixture();
        let opt = NativeOptimizer::new(&p.catalog);
        let plan_b = opt.optimize(&p.workload_for_day(0)[1], &Knobs::default());
        let rows = fl.replay_synchronized(&[&plan_a, &plan_b], &p.catalog, 3);
        assert_eq!(rows.len(), 3);
        assert!(rows.iter().all(|r| r.len() == 2));
        assert!(rows.iter().flatten().all(|&c| c > 0.0));
    }

    #[test]
    fn average_cost_is_between_min_and_max() {
        let (p, mut fl, plan) = fixture();
        let mut fl2 = fl.clone();
        let avg = fl.average_cost(&plan, &p.catalog, 9);
        let outs = fl2.replay(&plan, &p.catalog, 9);
        let min = outs.iter().map(|o| o.cpu_cost).fold(f64::MAX, f64::min);
        let max = outs.iter().map(|o| o.cpu_cost).fold(f64::MIN, f64::max);
        assert!(avg >= min && avg <= max);
    }

    #[test]
    fn replay_leaves_history_repository_unmutated() {
        use crate::history::{build_history, HistoryOptions};
        let (p, mut fl, _plan) = fixture();
        let repo = build_history(
            &p,
            &HistoryOptions {
                days: 1,
                max_queries: 8,
                ..HistoryOptions::default()
            },
        );
        let snapshot: Vec<(u64, f64, f64)> = repo
            .records()
            .iter()
            .map(|r| (r.signature.0, r.cpu_cost, r.latency))
            .collect();
        // Replay every logged plan through flighting, both modes.
        for r in repo.records() {
            let _ = fl.replay(&r.plan, &p.catalog, 2);
        }
        let plans: Vec<&PlanTree> = repo.records().iter().map(|r| &r.plan).collect();
        let _ = fl.replay_synchronized(&plans, &p.catalog, 2);
        let after: Vec<(u64, f64, f64)> = repo
            .records()
            .iter()
            .map(|r| (r.signature.0, r.cpu_cost, r.latency))
            .collect();
        assert_eq!(snapshot, after, "flighting must never rewrite history");
    }

    #[test]
    fn synchronized_replay_does_not_mutate_shared_executor_state_across_clones() {
        // The snapshot-per-plan discipline means two flighting clones that
        // replay the same candidate set stay in lockstep — no hidden state
        // leaks from one plan's execution into the next.
        let (p, fl, plan_a) = fixture();
        let opt = NativeOptimizer::new(&p.catalog);
        let plan_b = opt.optimize(&p.workload_for_day(0)[1], &Knobs::default());
        let mut fl1 = fl.clone();
        let mut fl2 = fl.clone();
        let rows1 = fl1.replay_synchronized(&[&plan_a, &plan_b], &p.catalog, 4);
        let rows2 = fl2.replay_synchronized(&[&plan_a, &plan_b], &p.catalog, 4);
        assert_eq!(rows1, rows2);
        assert_eq!(
            fl1.executor().cluster.tick_count(),
            fl2.executor().cluster.tick_count()
        );
    }
}
