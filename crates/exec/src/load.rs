//! The lazy, closed-form machine-load model.
//!
//! The legacy simulator advanced every machine's load one 20-second tick at
//! a time through a mean-reverting recurrence driven by a *shared* RNG — so
//! reading any machine's load at tick `t` required ticking all `N` machines
//! through all `t` ticks. That is `O(N × T)` work regardless of how many
//! machines any query ever touches, and it is what kept the simulator at
//! hundreds of machines instead of the paper's 5,000–10,000.
//!
//! This module replaces the recurrence with a **finite-memory
//! Ornstein–Uhlenbeck representation**: each machine's load deviation is the
//! geometrically-weighted sum of its last [`OU_WINDOW`] per-tick shocks,
//!
//! ```text
//! ou(m, t) = Σ_{k=0}^{W-1} ρ^k · ε(m, t − k),      ρ = 1 − θ
//! ```
//!
//! where every shock `ε(m, s)` comes from a counter-based hash of
//! `(seed, stream, machine, s)` — a dedicated, order-independent RNG stream
//! per machine and per metric. The sum is evaluated with a fixed Horner
//! recurrence (oldest shock first), which makes it *identical* to stepping
//! the AR(1) recurrence `x ← ρ·x + ε` tick by tick from a zero state
//! `W` ticks back. Two consequences:
//!
//! 1. **Lazy evaluation is exact.** Evaluating a machine at tick `t`
//!    directly gives bit-for-bit the same load as ticking it through every
//!    intermediate tick, because both are the same pure function of
//!    `(seed, machine, t)`. The event-driven engine evaluates machines only
//!    when something touches them; the dense reference engine evaluates all
//!    of them every tick; they cannot diverge.
//! 2. **Evaluation order cannot perturb draws.** No shared RNG stream
//!    exists, so allocating machine 7 before machine 3 (or never touching
//!    machine 3 at all) changes nothing about machine 3's trajectory.
//!
//! The diurnal multi-tenant baseline and the tenant-churn jitter are pure
//! functions of the tick for the same reason, and window averages of the
//! baseline are computed analytically at query time instead of being
//! accumulated tick by tick.

use crate::machine::LoadDynamics;
use mcsim_catalog::EnvMetrics;

/// Ticks per simulated day (20-second sampling ⇒ 4,320 ticks/day).
pub const TICKS_PER_DAY: u64 = 4_320;

/// Memory of the finite-window OU representation, in ticks. With the
/// default mean-reversion rate θ = 0.08 (ρ = 0.92), shocks older than 48
/// ticks carry weight ρ⁴⁸ ≈ 0.018 — the truncation changes the stationary
/// standard deviation by under 2 % while capping the cost of one lazy
/// evaluation at a fixed 48 fused hash-and-accumulate steps.
pub const OU_WINDOW: u64 = 48;

/// Per-metric shock-stream identifiers (the `stream` of `ε(m, s)`).
const STREAM_BUSY: u64 = 0x01;
const STREAM_IO: u64 = 0x02;
const STREAM_MEM: u64 = 0x03;
/// Shared tenant-churn jitter stream (machine index 0 by convention).
const STREAM_JITTER: u64 = 0x04;

/// SplitMix64 — the counter-based generator behind every shock stream.
/// A bijection on `u64`, so distinct inputs always produce distinct
/// outputs.
#[inline]
pub fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// The workspace's canonical per-index seed derivation:
/// `splitmix64(seed, index)` as a counter-based stream.
///
/// Derives an independent child seed for the `index`-th job/request/stream
/// of a master seed. Because `index → index · φ` (φ odd) is injective
/// modulo 2⁶⁴ and [`splitmix64`] is a bijection, child seeds of the same
/// master are **pairwise distinct** for distinct indices — the property
/// the sweep harness's seed-derivation proptest pins down.
#[inline]
pub fn seed_stream(seed: u64, index: u64) -> u64 {
    splitmix64(seed ^ index.wrapping_mul(0x9e37_79b9_7f4a_7c15))
}

/// A uniform draw in `[0, 1)` from a counter-based stream.
#[inline]
pub(crate) fn stream_uniform(seed: u64, stream: u64, machine: u64, counter: u64) -> f64 {
    let h = splitmix64(
        seed ^ stream.wrapping_mul(0xa076_1d64_78bd_642f)
            ^ machine.wrapping_mul(0xe703_7ed1_a0b4_28db)
            ^ counter.wrapping_mul(0x8ebc_6af0_9c88_c6e3),
    );
    // 53 mantissa bits → exact dyadic rational in [0, 1).
    (h >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A zero-mean, unit-variance shock from a counter-based stream. Uniform
/// shocks (scaled to unit variance) are used instead of Gaussians: the
/// OU window sums 48 of them, so the resulting load deviation is
/// CLT-Gaussian anyway, at a fraction of the per-shock cost.
#[inline]
fn stream_shock(seed: u64, stream: u64, machine: u64, tick: u64) -> f64 {
    // √12 scales a centred uniform to unit variance.
    (stream_uniform(seed, stream, machine, tick) - 0.5) * 3.464_101_615_137_754_6
}

/// The pure-function load model shared by both engines. Cheap to clone —
/// it is all constants.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadModel {
    /// Seed of every shock stream.
    pub seed: u64,
    /// Mean multi-tenant busy fraction.
    pub base_busy: f64,
    /// Amplitude of the diurnal load cycle.
    pub diurnal_amplitude: f64,
    /// Mean-reversion and volatility constants.
    pub dynamics: LoadDynamics,
}

impl LoadModel {
    /// The diurnal multi-tenant baseline busy fraction at `tick` (no
    /// jitter; the published cluster-level signal).
    #[inline]
    pub fn baseline_busy(&self, tick: u64) -> f64 {
        let phase =
            2.0 * std::f64::consts::PI * (tick % TICKS_PER_DAY) as f64 / TICKS_PER_DAY as f64;
        (self.base_busy + self.diurnal_amplitude * phase.sin()).clamp(0.02, 0.95)
    }

    /// Per-tick tenant-churn jitter shared by the whole cluster — a pure
    /// function of the tick, so both engines see identical churn.
    #[inline]
    pub fn jitter(&self, tick: u64) -> f64 {
        0.02 * stream_shock(self.seed, STREAM_JITTER, 0, tick)
    }

    /// The three per-machine OU deviations (busy, io, mem) at `tick`,
    /// evaluated by the canonical Horner recurrence over the shock window.
    /// This is the *only* way loads are ever computed, so eager and lazy
    /// readers agree bit for bit.
    #[inline]
    fn ou3(&self, machine: u64, tick: u64) -> (f64, f64, f64) {
        let rho = 1.0 - self.dynamics.theta;
        let start = tick.saturating_sub(OU_WINDOW - 1);
        let (mut b, mut i, mut m) = (0.0f64, 0.0f64, 0.0f64);
        for s in start..=tick {
            b = rho * b + stream_shock(self.seed, STREAM_BUSY, machine, s);
            i = rho * i + stream_shock(self.seed, STREAM_IO, machine, s);
            m = rho * m + stream_shock(self.seed, STREAM_MEM, machine, s);
        }
        (b, i, m)
    }

    /// The busy-stream OU deviation alone. The accumulator performs the
    /// exact same fused sequence of operations as the `b` lane of
    /// [`ou3`](Self::ou3) (independent accumulators, identical op order),
    /// so `busy_at` and `load_at` agree bit for bit.
    #[inline]
    fn ou_busy(&self, machine: u64, tick: u64) -> f64 {
        let rho = 1.0 - self.dynamics.theta;
        let start = tick.saturating_sub(OU_WINDOW - 1);
        let mut b = 0.0f64;
        for s in start..=tick {
            b = rho * b + stream_shock(self.seed, STREAM_BUSY, machine, s);
        }
        b
    }

    /// The single place the busy fraction is assembled from its parts —
    /// shared by [`busy_at`](Self::busy_at) and [`load_at`](Self::load_at)
    /// so the allocator's ranking key equals `1 − cpu_idle` exactly.
    #[inline]
    fn busy_from(&self, tick: u64, ou_b: f64, assigned: f64) -> f64 {
        (self.baseline_busy(tick)
            + self.jitter(tick)
            + self.dynamics.sigma_busy * ou_b
            + assigned.min(0.9))
        .clamp(0.02, 0.98)
    }

    /// A machine's busy fraction at `tick` — the allocator's ranking key.
    /// Evaluates only the busy shock stream (a third of the hashing of a
    /// full [`load_at`](Self::load_at)) and is bit-identical to
    /// `1.0 - load_at(..).cpu_idle`.
    #[inline]
    pub fn busy_at(&self, machine: u64, tick: u64, assigned: f64) -> f64 {
        self.busy_from(tick, self.ou_busy(machine, tick), assigned)
    }

    /// The stationary standard-deviation multiplier of the truncated OU
    /// window: `√(Σ ρ^2k)`. Volatilities in [`LoadDynamics`] are per-tick
    /// shock σ, exactly as in the legacy recurrence, so the stationary
    /// spread matches the legacy engine's.
    pub fn stationary_scale(&self) -> f64 {
        let rho2 = (1.0 - self.dynamics.theta).powi(2);
        ((1.0 - rho2.powi(OU_WINDOW as i32)) / (1.0 - rho2)).sqrt()
    }

    /// A machine's full load snapshot at `tick`, given the extra busy
    /// fraction `assigned` that queries placed on it. The four metrics
    /// couple exactly like the legacy recurrence's stationary state:
    /// IO_WAIT and MEM_USAGE track the busy fraction affinely with their
    /// own noise, LOAD5 follows the busy fraction.
    #[inline]
    pub fn load_at(&self, machine: u64, tick: u64, assigned: f64) -> EnvMetrics {
        let (ou_b, ou_i, ou_m) = self.ou3(machine, tick);
        let d = &self.dynamics;
        let busy = self.busy_from(tick, ou_b, assigned);
        let io = (0.03 + 0.08 * busy + d.sigma_io * ou_i).clamp(0.0, 0.5);
        let load5 = (busy * 24.0).max(0.0);
        let mem = (0.35 + 0.5 * busy + d.sigma_mem * ou_m).clamp(0.05, 0.98);
        EnvMetrics::new(1.0 - busy, io, load5, mem)
    }

    /// The *expected* cluster environment averaged over the window of
    /// `len` ticks ending at `now`, computed analytically at query time:
    /// the diurnal sine integrates in closed form, the OU deviations,
    /// jitter, and placed work are zero-mean/negligible in expectation.
    /// This replaces the legacy per-tick history deque (whose maintenance
    /// cost was `O(N)` per tick) for the LOAM-CE strategy.
    pub fn analytic_window_mean(&self, now: u64, len: u64) -> EnvMetrics {
        let len = len.max(1).min(now);
        if len == 0 {
            // No history yet: the expectation degenerates to the baseline
            // at the current (initial) tick.
            let busy = self.baseline_busy(now);
            return EnvMetrics::new(
                1.0 - busy,
                (0.03 + 0.08 * busy).clamp(0.0, 0.5),
                busy * 24.0,
                (0.35 + 0.5 * busy).clamp(0.05, 0.98),
            );
        }
        let start = now - len;
        // Mean of base + A·sin(2πt/D) over ticks [start, now): integral of
        // the sine gives (cos(2π·start/D) − cos(2π·now/D)) · D / (2π·len).
        let two_pi = 2.0 * std::f64::consts::PI;
        let d = TICKS_PER_DAY as f64;
        let mean_sin = if self.diurnal_amplitude == 0.0 {
            0.0
        } else {
            ((two_pi * start as f64 / d).cos() - (two_pi * now as f64 / d).cos()) * d
                / (two_pi * len as f64)
        };
        let busy = (self.base_busy + self.diurnal_amplitude * mean_sin).clamp(0.02, 0.95);
        EnvMetrics::new(
            1.0 - busy,
            (0.03 + 0.08 * busy).clamp(0.0, 0.5),
            busy * 24.0,
            (0.35 + 0.5 * busy).clamp(0.05, 0.98),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn model() -> LoadModel {
        LoadModel {
            seed: 7,
            base_busy: 0.45,
            diurnal_amplitude: 0.18,
            dynamics: LoadDynamics::default(),
        }
    }

    #[test]
    fn shocks_have_zero_mean_unit_variance() {
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|t| stream_shock(1, STREAM_BUSY, 3, t)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.02, "var {var}");
    }

    #[test]
    fn streams_are_decorrelated_across_machines_and_metrics() {
        let n = 20_000;
        let corr = |a: &dyn Fn(u64) -> f64, b: &dyn Fn(u64) -> f64| {
            let xs: Vec<f64> = (0..n).map(a).collect();
            let ys: Vec<f64> = (0..n).map(b).collect();
            let mx = xs.iter().sum::<f64>() / n as f64;
            let my = ys.iter().sum::<f64>() / n as f64;
            let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
            let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
            let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
            cov / (vx * vy).sqrt()
        };
        let machines = corr(&|t| stream_shock(1, STREAM_BUSY, 0, t), &|t| {
            stream_shock(1, STREAM_BUSY, 1, t)
        });
        let metrics = corr(&|t| stream_shock(1, STREAM_BUSY, 0, t), &|t| {
            stream_shock(1, STREAM_IO, 0, t)
        });
        assert!(machines.abs() < 0.03, "machine corr {machines}");
        assert!(metrics.abs() < 0.03, "metric corr {metrics}");
    }

    #[test]
    fn ou_is_temporally_correlated_and_stationary() {
        let m = model();
        let scale = m.stationary_scale();
        let n = 8_000u64;
        let xs: Vec<f64> = (100..n).map(|t| m.ou3(5, t).0).collect();
        let mean = xs.iter().sum::<f64>() / xs.len() as f64;
        let var = xs.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / xs.len() as f64;
        assert!(mean.abs() < 0.2, "mean {mean}");
        assert!(
            (var.sqrt() - scale).abs() / scale < 0.1,
            "std {} vs stationary {scale}",
            var.sqrt()
        );
        // Lag-1 autocorrelation ≈ ρ = 0.92.
        let lag1: f64 = xs
            .windows(2)
            .map(|w| (w[0] - mean) * (w[1] - mean))
            .sum::<f64>()
            / ((xs.len() - 1) as f64 * var);
        assert!((lag1 - 0.92).abs() < 0.05, "lag-1 autocorr {lag1}");
    }

    #[test]
    fn load_at_is_a_pure_function_of_time() {
        let m = model();
        let a = m.load_at(3, 500, 0.1);
        let b = m.load_at(3, 500, 0.1);
        assert_eq!(a, b);
        // And stays within the metric bounds everywhere.
        for t in 0..2_000 {
            let e = m.load_at(9, t, 0.0);
            assert!((0.02..=0.98).contains(&(1.0 - e.cpu_idle)));
            assert!((0.0..=0.5).contains(&e.io_wait));
            assert!(e.load5 >= 0.0);
            assert!((0.05..=0.98).contains(&e.mem_usage));
        }
    }

    #[test]
    fn analytic_window_mean_matches_numeric_average_of_the_baseline() {
        let m = model();
        for (now, len) in [(4_000u64, 2_000u64), (10_000, 4_320), (600, 600)] {
            let analytic = m.analytic_window_mean(now, len);
            let numeric = (now - len..now).map(|t| m.baseline_busy(t)).sum::<f64>() / len as f64;
            let busy = 1.0 - analytic.cpu_idle;
            assert!(
                (busy - numeric).abs() < 2e-3,
                "now={now} len={len}: analytic {busy} vs numeric {numeric}"
            );
        }
    }

    #[test]
    fn busy_at_is_bit_identical_to_load_at() {
        let m = model();
        for t in [0u64, 1, 47, 48, 49, 777, 100_000] {
            for mach in [0u64, 3, 9_999] {
                for assigned in [0.0, 0.15, 1.3] {
                    assert_eq!(
                        1.0 - m.busy_at(mach, t, assigned),
                        m.load_at(mach, t, assigned).cpu_idle
                    );
                }
            }
        }
    }

    #[test]
    fn assigned_work_raises_busy() {
        let m = model();
        let quiet = m.load_at(2, 900, 0.0);
        let loaded = m.load_at(2, 900, 0.4);
        assert!(loaded.cpu_idle < quiet.cpu_idle);
        assert!(loaded.load5 > quiet.load5);
    }

    #[test]
    fn seed_stream_is_pairwise_distinct_and_stable() {
        // Injectivity: distinct indices of the same master seed never
        // collide (the sweep harness's per-job seed guarantee).
        let seed = 0xdead_beef_cafe_f00d;
        let mut seen = std::collections::HashSet::new();
        for i in 0..10_000u64 {
            assert!(seen.insert(seed_stream(seed, i)), "collision at index {i}");
        }
        // Pure function: same (seed, index) always yields the same child.
        assert_eq!(seed_stream(7, 42), seed_stream(7, 42));
        // Different masters diverge.
        assert_ne!(seed_stream(7, 42), seed_stream(8, 42));
    }
}
