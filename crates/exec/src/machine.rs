//! Machine-level types: load-dynamics constants and read-only snapshots.
//!
//! Machines in the same cluster are intentionally homogeneous (Section 4:
//! "we therefore reasonably assume identical computational power across
//! machines") — what varies is their *load*, sampled every 20 seconds in
//! production. Load trajectories themselves live in
//! [`crate::load::LoadModel`] as pure functions of virtual time (the basis
//! of the event engine's lazy evaluation); this module keeps the dynamics
//! constants that parameterize them and the [`Machine`] snapshot the
//! cluster hands out for diagnostics.

use mcsim_catalog::EnvMetrics;
use rand::Rng;

/// Box–Muller standard normal draw from a uniform RNG (avoids needing a
/// distributions crate). Used by the executor's log-normal noise path.
pub fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Mean-reversion and volatility constants of the load processes. `theta`
/// is the per-tick mean-reversion rate (the OU window weights shocks by
/// `(1 − theta)^age`); the sigmas are per-tick shock volatilities, exactly
/// as in the historical tick-by-tick recurrence — so the stationary load
/// spread is unchanged.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadDynamics {
    /// Mean-reversion rate per tick.
    pub theta: f64,
    /// Per-tick volatility of the busy fraction.
    pub sigma_busy: f64,
    /// Per-tick volatility of IO_WAIT.
    pub sigma_io: f64,
    /// Per-tick volatility of MEM_USAGE.
    pub sigma_mem: f64,
}

impl Default for LoadDynamics {
    fn default() -> Self {
        LoadDynamics {
            theta: 0.08,
            sigma_busy: 0.06,
            sigma_io: 0.01,
            sigma_mem: 0.02,
        }
    }
}

/// A read-only snapshot of one machine at the cluster's current tick, as
/// returned by [`crate::Cluster::machine`]. The cluster does not store
/// per-machine state between ticks — loads are pure functions of virtual
/// time — so this is a view, not live state.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Machine index within its cluster.
    pub id: u32,
    /// Load snapshot at the cluster's current tick.
    pub load: EnvMetrics,
    /// Extra busy fraction from work this simulator placed here (active
    /// occupancy intervals, capped at 0.9).
    pub assigned_busy: f64,
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn std_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
