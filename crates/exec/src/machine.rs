//! One simulated machine with stochastically evolving load.
//!
//! Machines in the same cluster are intentionally homogeneous (Section 4:
//! "we therefore reasonably assume identical computational power across
//! machines") — what varies is their *load*, sampled every 20 seconds in
//! production. Each metric follows a clamped mean-reverting (Ornstein–
//! Uhlenbeck-style) process around a cluster baseline that itself moves with
//! a diurnal multi-tenant cycle.

use mcsim_catalog::EnvMetrics;
use rand::Rng;

/// Box–Muller standard normal draw from a uniform RNG (avoids needing a
/// distributions crate).
pub fn std_normal<R: Rng>(rng: &mut R) -> f64 {
    let u1: f64 = rng.gen_range(1e-12..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Mean-reversion and volatility constants of the load processes.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LoadDynamics {
    /// Mean-reversion rate per tick.
    pub theta: f64,
    /// Per-tick volatility of the busy fraction.
    pub sigma_busy: f64,
    /// Per-tick volatility of IO_WAIT.
    pub sigma_io: f64,
    /// Per-tick volatility of MEM_USAGE.
    pub sigma_mem: f64,
}

impl Default for LoadDynamics {
    fn default() -> Self {
        LoadDynamics {
            theta: 0.08,
            sigma_busy: 0.06,
            sigma_io: 0.01,
            sigma_mem: 0.02,
        }
    }
}

/// One machine.
#[derive(Debug, Clone)]
pub struct Machine {
    /// Machine index within its cluster.
    pub id: u32,
    /// Current load snapshot.
    pub load: EnvMetrics,
    /// Extra sustained load from queries this simulator itself placed here
    /// (decays each tick).
    pub assigned_busy: f64,
}

impl Machine {
    /// Creates a machine with load centred on `baseline_busy`.
    pub fn new<R: Rng>(id: u32, baseline_busy: f64, rng: &mut R) -> Self {
        let busy = (baseline_busy + 0.2 * std_normal(rng)).clamp(0.02, 0.98);
        Machine {
            id,
            load: EnvMetrics::new(
                1.0 - busy,
                (0.04 + 0.02 * std_normal(rng)).clamp(0.0, 0.3),
                busy * 24.0 * rng.gen_range(0.6..1.4),
                (0.35 + 0.5 * busy + 0.05 * std_normal(rng)).clamp(0.05, 0.98),
            ),
            assigned_busy: 0.0,
        }
    }

    /// Advances the load one 20-second tick, mean-reverting toward
    /// `baseline_busy` (the cluster's current multi-tenant pressure).
    pub fn tick<R: Rng>(&mut self, baseline_busy: f64, dyn_: &LoadDynamics, rng: &mut R) {
        let busy0 = 1.0 - self.load.cpu_idle;
        let target = (baseline_busy + self.assigned_busy).clamp(0.02, 0.98);
        let busy = (busy0 + dyn_.theta * (target - busy0) + dyn_.sigma_busy * std_normal(rng))
            .clamp(0.02, 0.98);
        let io = (self.load.io_wait
            + dyn_.theta * (0.03 + 0.08 * busy - self.load.io_wait)
            + dyn_.sigma_io * std_normal(rng))
        .clamp(0.0, 0.5);
        // LOAD5 follows the busy fraction with its own inertia.
        let load5 = (self.load.load5 + 0.2 * (busy * 24.0 - self.load.load5)).max(0.0);
        let mem = (self.load.mem_usage
            + dyn_.theta * (0.35 + 0.5 * busy - self.load.mem_usage)
            + dyn_.sigma_mem * std_normal(rng))
        .clamp(0.05, 0.98);
        self.load = EnvMetrics::new(1.0 - busy, io, load5, mem);
        // Placed work decays as instances finish.
        self.assigned_busy *= 0.7;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn load_stays_in_bounds_over_long_runs() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut m = Machine::new(0, 0.5, &mut rng);
        let d = LoadDynamics::default();
        for _ in 0..5000 {
            m.tick(0.5, &d, &mut rng);
            assert!((0.0..=1.0).contains(&m.load.cpu_idle));
            assert!((0.0..=1.0).contains(&m.load.io_wait));
            assert!(m.load.load5 >= 0.0);
            assert!((0.0..=1.0).contains(&m.load.mem_usage));
        }
    }

    #[test]
    fn load_mean_reverts_to_baseline() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut m = Machine::new(0, 0.9, &mut rng);
        let d = LoadDynamics::default();
        // Drive toward a low baseline; busy fraction should fall.
        let mut sum = 0.0;
        for i in 0..2000 {
            m.tick(0.2, &d, &mut rng);
            if i >= 1000 {
                sum += 1.0 - m.load.cpu_idle;
            }
        }
        let mean_busy = sum / 1000.0;
        assert!((mean_busy - 0.2).abs() < 0.1, "mean busy {mean_busy}");
    }

    #[test]
    fn assigned_work_raises_busy() {
        let mut rng = StdRng::seed_from_u64(2);
        let d = LoadDynamics::default();
        let mut quiet = Machine::new(0, 0.3, &mut rng);
        let mut loaded = quiet.clone();
        loaded.assigned_busy = 0.6;
        let mut q_sum = 0.0;
        let mut l_sum = 0.0;
        for _ in 0..50 {
            loaded.assigned_busy = 0.6; // keep the query running
            quiet.tick(0.3, &d, &mut rng);
            loaded.tick(0.3, &d, &mut rng);
            q_sum += 1.0 - quiet.load.cpu_idle;
            l_sum += 1.0 - loaded.load.cpu_idle;
        }
        assert!(l_sum > q_sum + 5.0, "loaded {l_sum} vs quiet {q_sum}");
    }

    #[test]
    fn std_normal_has_zero_mean_unit_variance() {
        let mut rng = StdRng::seed_from_u64(3);
        let n = 20_000;
        let samples: Vec<f64> = (0..n).map(|_| std_normal(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!(mean.abs() < 0.03, "mean {mean}");
        assert!((var - 1.0).abs() < 0.05, "var {var}");
    }
}
