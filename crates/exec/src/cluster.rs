//! The shared multi-tenant cluster and its Fuxi-like allocator.
//!
//! MaxCompute allocates resources "from cluster-wide pools averaging over
//! 5,000 machines with varying loads" (Challenge 1). The simulator keeps a
//! smaller pool (configurable) whose machines evolve under a diurnal
//! multi-tenant baseline; the allocator prefers idle machines for load
//! balancing — the very bias that makes cluster-wide environment averages a
//! poor predictor of the environment a query actually experiences
//! (Section 7.2.5, analysis of LOAM-CE/CB).

use crate::fault::{FaultConfig, FaultEvent, FaultState};
use crate::machine::{std_normal, LoadDynamics, Machine};
use mcsim_catalog::EnvMetrics;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::collections::VecDeque;

/// Ticks per simulated day (20-second sampling ⇒ 4,320 ticks/day).
pub const TICKS_PER_DAY: u64 = 4_320;

/// Cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of machines in the pool.
    pub n_machines: usize,
    /// Mean multi-tenant busy fraction.
    pub base_busy: f64,
    /// Amplitude of the diurnal load cycle.
    pub diurnal_amplitude: f64,
    /// Per-machine load dynamics.
    pub dynamics: LoadDynamics,
    /// How many cluster-mean snapshots to retain (for the LOAM-CE baseline,
    /// which fits a distribution over the past 24 hours).
    pub history_len: usize,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_machines: 200,
            base_busy: 0.45,
            diurnal_amplitude: 0.18,
            dynamics: LoadDynamics::default(),
            history_len: TICKS_PER_DAY as usize,
        }
    }
}

impl ClusterConfig {
    /// Starts a validated builder pre-loaded with the default configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            config: ClusterConfig::default(),
        }
    }
}

/// Error produced when a [`ClusterConfigBuilder`] is given values the
/// simulator cannot run with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidClusterConfig(pub String);

impl std::fmt::Display for InvalidClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid cluster config: {}", self.0)
    }
}

impl std::error::Error for InvalidClusterConfig {}

/// Builder for [`ClusterConfig`] that validates at
/// [`build`](ClusterConfigBuilder::build) instead of panicking deep inside
/// the simulator.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Number of machines in the pool (≥ 1).
    pub fn n_machines(mut self, n: usize) -> Self {
        self.config.n_machines = n;
        self
    }

    /// Mean multi-tenant busy fraction, in `[0, 1)`.
    pub fn base_busy(mut self, b: f64) -> Self {
        self.config.base_busy = b;
        self
    }

    /// Amplitude of the diurnal load cycle (≥ 0).
    pub fn diurnal_amplitude(mut self, a: f64) -> Self {
        self.config.diurnal_amplitude = a;
        self
    }

    /// Per-machine load dynamics.
    pub fn dynamics(mut self, d: LoadDynamics) -> Self {
        self.config.dynamics = d;
        self
    }

    /// How many cluster-mean snapshots to retain (≥ 1).
    pub fn history_len(mut self, n: usize) -> Self {
        self.config.history_len = n;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ClusterConfig, InvalidClusterConfig> {
        let c = self.config;
        if c.n_machines == 0 {
            return Err(InvalidClusterConfig("n_machines must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&c.base_busy) || !c.base_busy.is_finite() {
            return Err(InvalidClusterConfig(format!(
                "base_busy must be in [0, 1), got {}",
                c.base_busy
            )));
        }
        if !c.diurnal_amplitude.is_finite() || c.diurnal_amplitude < 0.0 {
            return Err(InvalidClusterConfig(format!(
                "diurnal_amplitude must be >= 0, got {}",
                c.diurnal_amplitude
            )));
        }
        if c.history_len == 0 {
            return Err(InvalidClusterConfig("history_len must be >= 1".into()));
        }
        Ok(c)
    }
}

/// The simulated cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    machines: Vec<Machine>,
    config: ClusterConfig,
    rng: StdRng,
    tick: u64,
    history: VecDeque<EnvMetrics>,
    faults: FaultState,
}

impl Cluster {
    /// Creates a cluster with seeded initial loads.
    pub fn new(seed: u64, config: ClusterConfig) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let machines: Vec<Machine> = (0..config.n_machines)
            .map(|i| Machine::new(i as u32, config.base_busy, &mut rng))
            .collect();
        let n = machines.len();
        Cluster {
            machines,
            config,
            rng,
            tick: 0,
            history: VecDeque::new(),
            faults: FaultState::new(FaultConfig::disabled(), n),
        }
    }

    /// Arms (or disarms) fault injection. Resets the fault state — the fault
    /// RNG stream, blacklist, and event log all restart from `config.seed`,
    /// so a given (cluster, fault) seed pair replays identically.
    pub fn set_fault_config(&mut self, config: FaultConfig) {
        self.faults = FaultState::new(config, self.machines.len());
    }

    /// True if any fault class can fire.
    pub fn faults_enabled(&self) -> bool {
        self.faults.enabled()
    }

    /// The live fault-injection state (blacklist, config).
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// The replayable fault log, in injection order.
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.log()
    }

    /// How many machines are blacklisted right now.
    pub fn down_count(&self) -> usize {
        self.faults.down_count(self.tick)
    }

    /// Samples whether a stage attempt straggles (fault path only).
    pub(crate) fn sample_straggler(&mut self, stage: usize, attempt: u32) -> Option<f64> {
        self.faults.sample_straggler(stage, attempt)
    }

    /// Samples whether a stage attempt is killed (fault path only).
    pub(crate) fn sample_stage_kill(&mut self, stage: usize, attempt: u32) -> Option<f64> {
        let tick = self.tick;
        self.faults.sample_stage_kill(stage, attempt, tick)
    }

    /// Records a speculative backup launch in the fault log.
    pub(crate) fn record_speculative(&mut self, stage: usize, attempt: u32) {
        let tick = self.tick;
        self.faults.record_speculative(stage, attempt, tick);
    }

    /// Records a scheduled retry in the fault log.
    pub(crate) fn record_retry(&mut self, stage: usize, attempt: u32, backoff_ticks: u64) {
        self.faults.record_retry(stage, attempt, backoff_ticks);
    }

    /// Current tick (each tick is 20 simulated seconds).
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.machines.len()
    }

    /// True if the pool is empty (never, for valid configs).
    pub fn is_empty(&self) -> bool {
        self.machines.is_empty()
    }

    /// The diurnal multi-tenant baseline busy fraction at the current tick.
    pub fn baseline_busy(&self) -> f64 {
        let phase =
            2.0 * std::f64::consts::PI * (self.tick % TICKS_PER_DAY) as f64 / TICKS_PER_DAY as f64;
        (self.config.base_busy + self.config.diurnal_amplitude * phase.sin()).clamp(0.02, 0.95)
    }

    /// Advances the whole cluster by one 20-second tick.
    pub fn step(&mut self) {
        if self.faults.enabled() {
            // Machine failures/recoveries draw from the dedicated fault RNG,
            // so the load processes below are unperturbed by injection.
            self.faults.tick_machines(self.tick);
        }
        let baseline = self.baseline_busy();
        // Slight per-tick jitter in the shared baseline models tenant churn.
        let jitter = 0.02 * std_normal(&mut self.rng);
        for m in &mut self.machines {
            m.tick(
                (baseline + jitter).clamp(0.02, 0.95),
                &self.config.dynamics,
                &mut self.rng,
            );
        }
        let mean = self.cluster_mean();
        self.history.push_back(mean);
        while self.history.len() > self.config.history_len {
            self.history.pop_front();
        }
        self.tick += 1;
    }

    /// Advances `n` ticks.
    pub fn advance(&mut self, n: u64) {
        for _ in 0..n {
            self.step();
        }
    }

    /// The cluster-wide average environment right now (what the LOAM-CB
    /// inference variant reads at optimization time).
    pub fn cluster_mean(&self) -> EnvMetrics {
        EnvMetrics::mean(self.machines.iter().map(|m| &m.load))
    }

    /// Mean of the retained cluster-wide history (what LOAM-CE's fitted
    /// distribution reduces to in expectation).
    pub fn history_mean(&self) -> EnvMetrics {
        if self.history.is_empty() {
            self.cluster_mean()
        } else {
            EnvMetrics::mean(self.history.iter())
        }
    }

    /// Fuxi-like allocation: pick the `n` most idle machines, and register
    /// the placed work so their load rises while the stage runs. Machines
    /// blacklisted by the fault injector are skipped (unless the whole pool
    /// is down, in which case allocation degrades to the full pool rather
    /// than deadlocking the simulation).
    pub fn allocate(&mut self, n: usize, work_intensity: f64) -> Vec<usize> {
        let mut idx: Vec<usize> = if self.faults.enabled() {
            let tick = self.tick;
            let up: Vec<usize> = (0..self.machines.len())
                .filter(|&i| !self.faults.is_down(i, tick))
                .collect();
            if up.is_empty() {
                (0..self.machines.len()).collect()
            } else {
                up
            }
        } else {
            (0..self.machines.len()).collect()
        };
        let n = n.clamp(1, idx.len());
        idx.sort_by(|&a, &b| {
            self.machines[b]
                .load
                .cpu_idle
                .partial_cmp(&self.machines[a].load.cpu_idle)
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let chosen: Vec<usize> = idx.into_iter().take(n).collect();
        for &i in &chosen {
            self.machines[i].assigned_busy =
                (self.machines[i].assigned_busy + work_intensity).min(0.9);
        }
        chosen
    }

    /// The average load over a set of machines right now.
    pub fn mean_load_of(&self, machines: &[usize]) -> EnvMetrics {
        EnvMetrics::mean(machines.iter().map(|&i| &self.machines[i].load))
    }

    /// Direct read access to one machine (tests, diagnostics).
    pub fn machine(&self, i: usize) -> &Machine {
        &self.machines[i]
    }

    /// Maps allocation indices (as returned by [`Cluster::allocate`]) to the
    /// stable ids of the underlying machines — what trace timelines key on.
    pub fn machine_ids(&self, indices: &[usize]) -> Vec<u32> {
        indices.iter().map(|&i| self.machines[i].id).collect()
    }

    /// A seeded, decorrelated RNG derived from the cluster's (for
    /// per-execution noise that must not disturb the load processes).
    pub fn fork_rng(&mut self, salt: u64) -> StdRng {
        StdRng::seed_from_u64(self.rng.gen::<u64>() ^ salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_prefers_idle_machines() {
        let mut c = Cluster::new(5, ClusterConfig::default());
        c.advance(50);
        let chosen = c.allocate(10, 0.0);
        let chosen_idle = c.mean_load_of(&chosen).cpu_idle;
        let overall_idle = c.cluster_mean().cpu_idle;
        assert!(
            chosen_idle > overall_idle,
            "allocator should prefer idle machines: {chosen_idle} vs {overall_idle}"
        );
    }

    #[test]
    fn allocation_registers_load() {
        let mut c = Cluster::new(6, ClusterConfig::default());
        c.advance(10);
        let chosen = c.allocate(5, 0.5);
        let before = c.mean_load_of(&chosen).cpu_idle;
        c.advance(5);
        let after = c.mean_load_of(&chosen).cpu_idle;
        assert!(
            after < before,
            "placed work should raise busy: {before}->{after}"
        );
    }

    #[test]
    fn diurnal_baseline_oscillates() {
        let mut c = Cluster::new(7, ClusterConfig::default());
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..(TICKS_PER_DAY / 50) {
            c.advance(50);
            let b = c.baseline_busy();
            lo = lo.min(b);
            hi = hi.max(b);
        }
        assert!(hi - lo > 0.2, "diurnal swing too small: {lo}..{hi}");
    }

    #[test]
    fn history_tracks_cluster_means() {
        let mut c = Cluster::new(8, ClusterConfig::default());
        c.advance(100);
        let hm = c.history_mean();
        assert!(hm.cpu_idle > 0.0 && hm.cpu_idle < 1.0);
    }

    #[test]
    fn allocation_is_clamped_to_pool_size() {
        let mut c = Cluster::new(
            9,
            ClusterConfig {
                n_machines: 4,
                ..ClusterConfig::default()
            },
        );
        let chosen = c.allocate(100, 0.1);
        assert_eq!(chosen.len(), 4);
    }

    #[test]
    fn builder_accepts_valid_and_rejects_invalid_configs() {
        let cfg = ClusterConfig::builder()
            .n_machines(16)
            .base_busy(0.3)
            .diurnal_amplitude(0.1)
            .history_len(100)
            .build()
            .unwrap();
        assert_eq!(cfg.n_machines, 16);
        assert!(ClusterConfig::builder().n_machines(0).build().is_err());
        assert!(ClusterConfig::builder().base_busy(1.5).build().is_err());
        assert!(ClusterConfig::builder()
            .base_busy(f64::NAN)
            .build()
            .is_err());
        assert!(ClusterConfig::builder()
            .diurnal_amplitude(-0.1)
            .build()
            .is_err());
        assert!(ClusterConfig::builder().history_len(0).build().is_err());
    }

    #[test]
    fn clusters_with_same_seed_evolve_identically() {
        let mut a = Cluster::new(11, ClusterConfig::default());
        let mut b = Cluster::new(11, ClusterConfig::default());
        a.advance(25);
        b.advance(25);
        assert_eq!(a.cluster_mean(), b.cluster_mean());
    }
}
