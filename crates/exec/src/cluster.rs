//! The shared multi-tenant cluster, its Fuxi-like allocator, and the
//! discrete-event simulation core.
//!
//! MaxCompute allocates resources "from cluster-wide pools averaging over
//! 5,000 machines with varying loads" (Challenge 1). Reaching that fleet
//! size in simulation rules out the classic dense loop (advance every
//! machine every 20-second tick): its wall-clock cost is `machines × ticks`
//! regardless of how many machines queries actually touch. The cluster
//! therefore runs one of two engines behind [`ClusterConfig::engine`]:
//!
//! * [`EngineMode::EventDriven`] (the default) — virtual time is a plain
//!   counter plus a binary-heap event queue (machine failures, recoveries;
//!   retry/backoff timers and stage windows are just `advance` calls over
//!   this queue). Machine loads are **pure functions of virtual time**
//!   ([`LoadModel`]), evaluated lazily only for the machines a query
//!   touches, and the cluster-history average is computed analytically at
//!   query time. Advancing `n` ticks costs `O(events in the interval)`, not
//!   `O(n × machines)`.
//! * [`EngineMode::DenseTick`] — the reference engine: the same event queue
//!   and the same load model, but every machine is eagerly evaluated every
//!   tick (folded into a checksum so the work cannot be optimized away).
//!
//! Because both engines evaluate the *same* pure load function, drain the
//! *same* event queue, and draw allocation candidates from the *same*
//! counter-based stream, they are bit-identical by construction — the
//! property suite in `tests/event_props.rs` proves it over random seeds,
//! pool sizes, and fault configurations.
//!
//! The allocator itself is rebuilt for scale: instead of sorting the whole
//! pool by idleness (`O(N log N)` per stage), it rejection-samples a
//! power-of-d-choices candidate set from a dedicated RNG stream and picks
//! the `n` most idle candidates — preserving the idle-preference bias that
//! makes cluster-wide averages a poor predictor of per-query environments
//! (Section 7.2.5) at `O(n)` cost.

use crate::fault::{FaultConfig, FaultEvent, FaultState};
pub use crate::load::TICKS_PER_DAY;
use crate::load::{stream_uniform, LoadModel};
use crate::machine::{LoadDynamics, Machine};
use mcsim_catalog::EnvMetrics;
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::cmp::Reverse;
use std::collections::BinaryHeap;

/// How long one allocation occupies its machines, in ticks. Stages hold
/// their slots for a handful of 20-second samples; overlapping stages on
/// the same machine stack (capped at 0.9 extra busy inside the load model).
const ASSIGN_HOLD_TICKS: u64 = 8;

/// Machines sampled by [`Cluster::utilization_estimate`] at fleet scale.
/// 64 evenly-spaced machines estimate the pool-wide busy fraction to
/// within ~1 % of the OU spread while keeping the per-query gauge cost
/// constant in the pool size.
const UTILIZATION_SAMPLE: usize = 64;

/// Stream id of the allocator's candidate draws (machine index 0 by
/// convention; the counter is the cluster-wide draw counter).
const STREAM_ALLOC: u64 = 0x05;

/// Stream id of [`Cluster::fork_rng`] derivations.
const STREAM_FORK: u64 = 0x06;

/// Which simulation core a [`Cluster`] runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum EngineMode {
    /// Discrete-event loop with lazy load evaluation (the default).
    #[default]
    EventDriven,
    /// The dense per-tick reference engine: identical event queue and load
    /// model, but every machine is eagerly evaluated every tick.
    DenseTick,
}

/// Engine-side work counters, exposed for benchmarks and the obs layer
/// (`exec.events`, `exec.lazy_advances`, `exec.heap_peak`).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct EngineStats {
    /// Events popped from the queue (fault arrivals/recoveries).
    pub events: u64,
    /// Lazy per-machine load evaluations (allocator ranking + stage reads).
    pub lazy_advances: u64,
    /// High-water mark of the event queue.
    pub heap_peak: usize,
}

/// Cluster configuration.
#[derive(Debug, Clone, PartialEq)]
pub struct ClusterConfig {
    /// Number of machines in the pool.
    pub n_machines: usize,
    /// Mean multi-tenant busy fraction.
    pub base_busy: f64,
    /// Amplitude of the diurnal load cycle.
    pub diurnal_amplitude: f64,
    /// Per-machine load dynamics.
    pub dynamics: LoadDynamics,
    /// Window length, in ticks, of the cluster-history average (for the
    /// LOAM-CE baseline, which fits a distribution over the past 24 hours).
    pub history_len: usize,
    /// Which simulation core to run.
    pub engine: EngineMode,
}

impl Default for ClusterConfig {
    fn default() -> Self {
        ClusterConfig {
            n_machines: 200,
            base_busy: 0.45,
            diurnal_amplitude: 0.18,
            dynamics: LoadDynamics::default(),
            history_len: TICKS_PER_DAY as usize,
            engine: EngineMode::default(),
        }
    }
}

impl ClusterConfig {
    /// Starts a validated builder pre-loaded with the default configuration.
    pub fn builder() -> ClusterConfigBuilder {
        ClusterConfigBuilder {
            config: ClusterConfig::default(),
        }
    }
}

/// Error produced when a [`ClusterConfigBuilder`] is given values the
/// simulator cannot run with.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InvalidClusterConfig(pub String);

impl std::fmt::Display for InvalidClusterConfig {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "invalid cluster config: {}", self.0)
    }
}

impl std::error::Error for InvalidClusterConfig {}

/// Builder for [`ClusterConfig`] that validates at
/// [`build`](ClusterConfigBuilder::build) instead of panicking deep inside
/// the simulator.
#[derive(Debug, Clone)]
pub struct ClusterConfigBuilder {
    config: ClusterConfig,
}

impl ClusterConfigBuilder {
    /// Number of machines in the pool (≥ 1).
    pub fn n_machines(mut self, n: usize) -> Self {
        self.config.n_machines = n;
        self
    }

    /// Mean multi-tenant busy fraction, in `[0, 1)`.
    pub fn base_busy(mut self, b: f64) -> Self {
        self.config.base_busy = b;
        self
    }

    /// Amplitude of the diurnal load cycle (≥ 0).
    pub fn diurnal_amplitude(mut self, a: f64) -> Self {
        self.config.diurnal_amplitude = a;
        self
    }

    /// Per-machine load dynamics.
    pub fn dynamics(mut self, d: LoadDynamics) -> Self {
        self.config.dynamics = d;
        self
    }

    /// Window length of the cluster-history average, in ticks (≥ 1).
    pub fn history_len(mut self, n: usize) -> Self {
        self.config.history_len = n;
        self
    }

    /// Which simulation core to run.
    pub fn engine(mut self, mode: EngineMode) -> Self {
        self.config.engine = mode;
        self
    }

    /// Validates and returns the configuration.
    pub fn build(self) -> Result<ClusterConfig, InvalidClusterConfig> {
        let c = self.config;
        if c.n_machines == 0 {
            return Err(InvalidClusterConfig("n_machines must be >= 1".into()));
        }
        if !(0.0..1.0).contains(&c.base_busy) || !c.base_busy.is_finite() {
            return Err(InvalidClusterConfig(format!(
                "base_busy must be in [0, 1), got {}",
                c.base_busy
            )));
        }
        if !c.diurnal_amplitude.is_finite() || c.diurnal_amplitude < 0.0 {
            return Err(InvalidClusterConfig(format!(
                "diurnal_amplitude must be >= 0, got {}",
                c.diurnal_amplitude
            )));
        }
        if c.history_len == 0 {
            return Err(InvalidClusterConfig("history_len must be >= 1".into()));
        }
        Ok(c)
    }
}

/// One occupancy interval: work this simulator placed on a machine. Active
/// for ticks `t` with `start < t <= end`, which makes the assigned load a
/// pure function of virtual time — an allocation at tick `t` is visible
/// from `t + 1`, matching the legacy one-tick ramp-in.
#[derive(Debug, Clone, Copy)]
struct Slot {
    start: u64,
    end: u64,
    weight: f64,
}

/// The total assigned weight active on a machine at `tick`.
#[inline]
fn assigned_weight(slots: &[Slot], tick: u64) -> f64 {
    slots
        .iter()
        .filter(|s| s.start < tick && tick <= s.end)
        .map(|s| s.weight)
        .sum()
}

/// What a queued event does when its time comes.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
enum EventKind {
    /// A machine fails and is blacklisted.
    MachineFail(u32),
    /// A blacklisted machine recovers and rejoins the pool.
    MachineRecover(u32),
}

/// A queued event. Ordered by `(tick, seq)` — `seq` is a monotone push
/// counter, so heap pops are a total, deterministic order even among
/// events scheduled for the same tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
struct Event {
    tick: u64,
    seq: u64,
    kind: EventKind,
}

/// The simulated cluster.
#[derive(Debug, Clone)]
pub struct Cluster {
    config: ClusterConfig,
    model: LoadModel,
    tick: u64,
    /// Per-machine occupancy intervals (work this simulator placed).
    occupancy: Vec<Vec<Slot>>,
    /// The event queue (min-heap over `(tick, seq)`).
    events: BinaryHeap<Reverse<Event>>,
    event_seq: u64,
    faults: FaultState,
    /// Dense-engine load cache, refreshed every tick (empty in event mode).
    loads: Vec<EnvMetrics>,
    /// Fold of the dense engine's eager evaluations, so the reference
    /// engine's per-tick work cannot be optimized away.
    dense_checksum: f64,
    fork_counter: u64,
    alloc_counter: u64,
    stats: EngineStats,
    /// Generation-marked scratch for allocation dedup (no per-call allocs).
    scratch_mark: Vec<u32>,
    scratch_gen: u32,
}

impl Cluster {
    /// Creates a cluster; every load trajectory derives from `seed`.
    pub fn new(seed: u64, config: ClusterConfig) -> Self {
        let n = config.n_machines;
        let model = LoadModel {
            seed,
            base_busy: config.base_busy,
            diurnal_amplitude: config.diurnal_amplitude,
            dynamics: config.dynamics,
        };
        let mut c = Cluster {
            model,
            tick: 0,
            occupancy: vec![Vec::new(); n],
            events: BinaryHeap::new(),
            event_seq: 0,
            faults: FaultState::new(FaultConfig::disabled(), n),
            loads: Vec::new(),
            dense_checksum: 0.0,
            fork_counter: 0,
            alloc_counter: 0,
            stats: EngineStats::default(),
            scratch_mark: vec![0; n],
            scratch_gen: 0,
            config,
        };
        if c.config.engine == EngineMode::DenseTick {
            c.loads = vec![EnvMetrics::default(); n];
            c.eval_all_dense();
        }
        c
    }

    /// Arms (or disarms) fault injection. Resets the fault state — the
    /// per-machine fault streams, blacklist, and event log all restart from
    /// `config.seed`, so a given (cluster, fault) seed pair replays
    /// identically. Pending fault timers in the queue are discarded (every
    /// queued event is a fault timer) and the first failure of each machine
    /// is scheduled from its dedicated stream.
    pub fn set_fault_config(&mut self, config: FaultConfig) {
        self.events.clear();
        self.faults = FaultState::new(config, self.config.n_machines);
        if self.faults.config().machine_fail_prob > 0.0 {
            for m in 0..self.config.n_machines {
                if let Some(gap) = self.faults.next_failure_gap(m) {
                    self.push_event(self.tick + gap, EventKind::MachineFail(m as u32));
                }
            }
        }
    }

    /// True if any fault class can fire.
    pub fn faults_enabled(&self) -> bool {
        self.faults.enabled()
    }

    /// The live fault-injection state (blacklist, config).
    pub fn fault_state(&self) -> &FaultState {
        &self.faults
    }

    /// The replayable fault log, in injection order.
    pub fn fault_log(&self) -> &[FaultEvent] {
        self.faults.log()
    }

    /// How many machines are blacklisted right now.
    pub fn down_count(&self) -> usize {
        self.faults.down_count(self.tick)
    }

    /// Engine-side work counters (events drained, lazy evaluations, event
    /// queue high-water mark).
    pub fn engine_stats(&self) -> EngineStats {
        self.stats
    }

    /// The active engine.
    pub fn engine(&self) -> EngineMode {
        self.config.engine
    }

    /// Fold of the dense engine's eager per-tick evaluations (0 in event
    /// mode). Benchmarks read it so the reference loop is never dead code.
    pub fn dense_checksum(&self) -> f64 {
        self.dense_checksum
    }

    /// Samples whether a stage attempt straggles (fault path only).
    pub(crate) fn sample_straggler(&mut self, stage: usize, attempt: u32) -> Option<f64> {
        self.faults.sample_straggler(stage, attempt)
    }

    /// Samples whether a stage attempt is killed (fault path only).
    pub(crate) fn sample_stage_kill(&mut self, stage: usize, attempt: u32) -> Option<f64> {
        let tick = self.tick;
        self.faults.sample_stage_kill(stage, attempt, tick)
    }

    /// Records a speculative backup launch in the fault log.
    pub(crate) fn record_speculative(&mut self, stage: usize, attempt: u32) {
        let tick = self.tick;
        self.faults.record_speculative(stage, attempt, tick);
    }

    /// Records a scheduled retry in the fault log.
    pub(crate) fn record_retry(&mut self, stage: usize, attempt: u32, backoff_ticks: u64) {
        self.faults.record_retry(stage, attempt, backoff_ticks);
    }

    /// Current tick (each tick is 20 simulated seconds).
    pub fn tick_count(&self) -> u64 {
        self.tick
    }

    /// Number of machines.
    pub fn len(&self) -> usize {
        self.config.n_machines
    }

    /// True if the pool is empty (never, for valid configs).
    pub fn is_empty(&self) -> bool {
        self.config.n_machines == 0
    }

    /// The diurnal multi-tenant baseline busy fraction at the current tick.
    pub fn baseline_busy(&self) -> f64 {
        self.model.baseline_busy(self.tick)
    }

    /// Advances the whole cluster by one 20-second tick.
    pub fn step(&mut self) {
        self.advance(1);
    }

    /// Advances `n` ticks. In event mode this drains the queued events of
    /// the interval and moves the clock — `O(events)`, independent of the
    /// pool size. The dense engine additionally evaluates every machine at
    /// every intermediate tick (the reference cost).
    pub fn advance(&mut self, n: u64) {
        match self.config.engine {
            EngineMode::EventDriven => {
                let target = self.tick + n;
                self.drain_events(target);
                self.tick = target;
            }
            EngineMode::DenseTick => {
                for _ in 0..n {
                    let t = self.tick + 1;
                    self.drain_events(t);
                    self.tick = t;
                    self.eval_all_dense();
                }
            }
        }
        if mcsim_obs::enabled() {
            mcsim_obs::gauge("exec.heap_peak", self.stats.heap_peak as f64);
        }
    }

    /// Schedules an event; `tick` must be strictly in the future (every
    /// producer draws gaps/durations ≥ 1, which keeps the "all events ≤ now
    /// are processed" invariant maintainable by `advance` alone).
    fn push_event(&mut self, tick: u64, kind: EventKind) {
        debug_assert!(tick > self.tick, "events must be scheduled in the future");
        let seq = self.event_seq;
        self.event_seq += 1;
        self.events.push(Reverse(Event { tick, seq, kind }));
        self.stats.heap_peak = self.stats.heap_peak.max(self.events.len());
    }

    /// Pops and applies every event with `tick <= up_to`, in (tick, seq)
    /// order — the single mechanism both engines share, so fault schedules
    /// and logs are identical whether time advances in one jump or
    /// tick-by-tick.
    fn drain_events(&mut self, up_to: u64) {
        while let Some(&Reverse(ev)) = self.events.peek() {
            if ev.tick > up_to {
                break;
            }
            self.events.pop();
            self.stats.events += 1;
            mcsim_obs::counter("exec.events", 1);
            match ev.kind {
                EventKind::MachineFail(m) => {
                    let m = m as usize;
                    if self.faults.is_down(m, ev.tick) {
                        continue; // cannot happen under the scheduling discipline
                    }
                    let until = ev.tick + self.faults.downtime_ticks(m);
                    self.faults.mark_down(m, ev.tick, until);
                    self.push_event(until, EventKind::MachineRecover(m as u32));
                }
                EventKind::MachineRecover(m) => {
                    let mi = m as usize;
                    self.faults.mark_up(mi, ev.tick);
                    if let Some(gap) = self.faults.next_failure_gap(mi) {
                        self.push_event(ev.tick + gap, EventKind::MachineFail(m));
                    }
                }
            }
        }
    }

    /// The dense engine's per-tick reference work: eagerly evaluate every
    /// machine at the current tick and refresh the load cache. The fold
    /// into `dense_checksum` keeps the loop honest under optimization.
    fn eval_all_dense(&mut self) {
        let t = self.tick;
        let mut sum = 0.0;
        for i in 0..self.config.n_machines {
            self.occupancy[i].retain(|s| s.end >= t);
            let e = self
                .model
                .load_at(i as u64, t, assigned_weight(&self.occupancy[i], t));
            sum += e.cpu_idle;
            self.loads[i] = e;
        }
        self.dense_checksum += sum;
    }

    /// One machine's load snapshot at the current tick (cache in dense
    /// mode, lazy evaluation in event mode — same value either way).
    fn load_of(&self, i: usize) -> EnvMetrics {
        match self.config.engine {
            EngineMode::DenseTick => self.loads[i],
            EngineMode::EventDriven => self.model.load_at(
                i as u64,
                self.tick,
                assigned_weight(&self.occupancy[i], self.tick),
            ),
        }
    }

    /// The cluster-wide average environment right now (what the LOAM-CB
    /// inference variant reads at optimization time). `O(machines)` — call
    /// sparingly at fleet scale; the executor gates it behind obs.
    pub fn cluster_mean(&self) -> EnvMetrics {
        match self.config.engine {
            EngineMode::DenseTick => EnvMetrics::mean(self.loads.iter()),
            EngineMode::EventDriven => {
                let snaps: Vec<EnvMetrics> = (0..self.config.n_machines)
                    .map(|i| self.load_of(i))
                    .collect();
                EnvMetrics::mean(snaps.iter())
            }
        }
    }

    /// A bounded-cost estimate of the cluster-wide busy fraction, for
    /// observability gauges on the per-query hot path: the exact mean at
    /// small pools, a deterministic evenly-spaced sample of 64 machines
    /// (`UTILIZATION_SAMPLE`) at fleet scale (otherwise the gauge
    /// alone re-introduces the `O(machines)` per-query cost the event
    /// engine exists to remove). Reads the same per-machine loads in both
    /// engines, mutates nothing, and draws no RNG state — so it can never
    /// perturb replay and reports the same value on either engine.
    pub fn utilization_estimate(&self) -> f64 {
        let n = self.config.n_machines;
        if n <= UTILIZATION_SAMPLE {
            return 1.0 - self.cluster_mean().cpu_idle;
        }
        let stride = n / UTILIZATION_SAMPLE;
        let snaps: Vec<EnvMetrics> = (0..UTILIZATION_SAMPLE)
            .map(|k| self.load_of(k * stride))
            .collect();
        1.0 - EnvMetrics::mean(snaps.iter()).cpu_idle
    }

    /// The expected cluster environment over the trailing
    /// [`ClusterConfig::history_len`] window (what LOAM-CE's fitted
    /// distribution reduces to in expectation). Computed analytically from
    /// the diurnal baseline — the OU deviations, tenant jitter, and placed
    /// work are zero-mean or negligible in a day-long average — so no
    /// per-tick history buffer needs maintaining in either engine.
    pub fn history_mean(&self) -> EnvMetrics {
        self.model
            .analytic_window_mean(self.tick, self.config.history_len as u64)
    }

    /// Fuxi-like allocation at fleet scale: rejection-sample a
    /// power-of-d-choices candidate set (4× oversampling) from the
    /// dedicated allocation stream, skip blacklisted machines, and take the
    /// `n` most idle candidates. Registers the placed work as an occupancy
    /// interval so the chosen machines' load rises while the stage runs.
    /// If the whole pool is down, allocation degrades to the full pool
    /// rather than deadlocking the simulation.
    pub fn allocate(&mut self, n: usize, work_intensity: f64) -> Vec<usize> {
        let pool = self.config.n_machines;
        let t = self.tick;
        let faults_on = self.faults.enabled();
        let want = n.clamp(1, pool);
        let target = (want * 4).max(want + 8).min(pool);

        self.scratch_gen = self.scratch_gen.wrapping_add(1);
        if self.scratch_gen == 0 {
            self.scratch_mark.fill(0);
            self.scratch_gen = 1;
        }
        let gen = self.scratch_gen;

        let mut candidates: Vec<usize> = Vec::with_capacity(target);
        let max_attempts = 16 * target + 64;
        let mut attempts = 0;
        while candidates.len() < target && attempts < max_attempts {
            attempts += 1;
            let u = stream_uniform(self.model.seed, STREAM_ALLOC, 0, self.alloc_counter);
            self.alloc_counter += 1;
            let i = ((u * pool as f64) as usize).min(pool - 1);
            if self.scratch_mark[i] == gen {
                continue;
            }
            self.scratch_mark[i] = gen;
            if faults_on && self.faults.is_down(i, t) {
                continue;
            }
            candidates.push(i);
        }
        if candidates.len() < target {
            // Rejection sampling starved (tiny pool or mass blacklisting):
            // finish deterministically by linear scan.
            for i in 0..pool {
                if candidates.len() >= target {
                    break;
                }
                if self.scratch_mark[i] == gen {
                    continue;
                }
                self.scratch_mark[i] = gen;
                if faults_on && self.faults.is_down(i, t) {
                    continue;
                }
                candidates.push(i);
            }
        }
        if candidates.is_empty() {
            // The whole pool is blacklisted: degrade to everyone.
            candidates = (0..pool).collect();
        }

        // Rank by the busy fraction (the busy lane of the load model alone
        // — bit-identical to `1 − cpu_idle`), ties broken by index.
        let mut ranked: Vec<(f64, usize)> = candidates
            .iter()
            .map(|&i| {
                (
                    self.model
                        .busy_at(i as u64, t, assigned_weight(&self.occupancy[i], t)),
                    i,
                )
            })
            .collect();
        self.stats.lazy_advances += ranked.len() as u64;
        if mcsim_obs::enabled() {
            mcsim_obs::counter("exec.lazy_advances", ranked.len() as u64);
        }
        ranked.sort_by(|a, b| {
            a.0.partial_cmp(&b.0)
                .unwrap_or(std::cmp::Ordering::Equal)
                .then(a.1.cmp(&b.1))
        });
        let chosen: Vec<usize> = ranked
            .iter()
            .take(want.min(ranked.len()))
            .map(|&(_, i)| i)
            .collect();
        for &i in &chosen {
            let occ = &mut self.occupancy[i];
            occ.retain(|s| s.end >= t);
            occ.push(Slot {
                start: t,
                end: t + ASSIGN_HOLD_TICKS,
                weight: work_intensity,
            });
        }
        chosen
    }

    /// The average load over a set of machines right now. In event mode
    /// each machine is lazily evaluated at the current tick — the
    /// `exec.lazy_advances` counter tracks these evaluations.
    pub fn mean_load_of(&mut self, machines: &[usize]) -> EnvMetrics {
        if self.config.engine == EngineMode::EventDriven {
            self.stats.lazy_advances += machines.len() as u64;
            if mcsim_obs::enabled() {
                mcsim_obs::counter("exec.lazy_advances", machines.len() as u64);
            }
        }
        let snaps: Vec<EnvMetrics> = machines.iter().map(|&i| self.load_of(i)).collect();
        EnvMetrics::mean(snaps.iter())
    }

    /// A read-only snapshot of one machine (tests, diagnostics).
    pub fn machine(&self, i: usize) -> Machine {
        Machine {
            id: i as u32,
            load: self.load_of(i),
            assigned_busy: assigned_weight(&self.occupancy[i], self.tick).min(0.9),
        }
    }

    /// Maps allocation indices (as returned by [`Cluster::allocate`]) to the
    /// stable ids of the underlying machines — what trace timelines key on.
    pub fn machine_ids(&self, indices: &[usize]) -> Vec<u32> {
        indices.iter().map(|&i| i as u32).collect()
    }

    /// A seeded, decorrelated RNG derived from the cluster's fork stream
    /// (for per-execution noise that must not disturb the load processes —
    /// the counter-based derivation means forks are order-deterministic).
    pub fn fork_rng(&mut self, salt: u64) -> StdRng {
        self.fork_counter += 1;
        let u = stream_uniform(self.model.seed, STREAM_FORK, 0, self.fork_counter);
        StdRng::seed_from_u64((u * u64::MAX as f64) as u64 ^ salt)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn allocation_prefers_idle_machines() {
        let mut c = Cluster::new(5, ClusterConfig::default());
        c.advance(50);
        let chosen = c.allocate(10, 0.0);
        let chosen_idle = c.mean_load_of(&chosen).cpu_idle;
        let overall_idle = c.cluster_mean().cpu_idle;
        assert!(
            chosen_idle > overall_idle,
            "allocator should prefer idle machines: {chosen_idle} vs {overall_idle}"
        );
    }

    #[test]
    fn allocation_registers_load() {
        let mut c = Cluster::new(6, ClusterConfig::default());
        c.advance(10);
        let chosen = c.allocate(5, 0.5);
        let before = c.mean_load_of(&chosen).cpu_idle;
        c.advance(5);
        let after = c.mean_load_of(&chosen).cpu_idle;
        assert!(
            after < before,
            "placed work should raise busy: {before}->{after}"
        );
    }

    #[test]
    fn diurnal_baseline_oscillates() {
        let mut c = Cluster::new(7, ClusterConfig::default());
        let mut lo = f64::MAX;
        let mut hi = f64::MIN;
        for _ in 0..(TICKS_PER_DAY / 50) {
            c.advance(50);
            let b = c.baseline_busy();
            lo = lo.min(b);
            hi = hi.max(b);
        }
        assert!(hi - lo > 0.2, "diurnal swing too small: {lo}..{hi}");
    }

    #[test]
    fn history_tracks_cluster_means() {
        let mut c = Cluster::new(8, ClusterConfig::default());
        c.advance(100);
        let hm = c.history_mean();
        assert!(hm.cpu_idle > 0.0 && hm.cpu_idle < 1.0);
        // And before any advance, the degenerate window is still finite.
        let fresh = Cluster::new(8, ClusterConfig::default());
        let hm0 = fresh.history_mean();
        assert!(hm0.cpu_idle > 0.0 && hm0.cpu_idle < 1.0);
    }

    #[test]
    fn allocation_is_clamped_to_pool_size() {
        let mut c = Cluster::new(
            9,
            ClusterConfig {
                n_machines: 4,
                ..ClusterConfig::default()
            },
        );
        let chosen = c.allocate(100, 0.1);
        assert_eq!(chosen.len(), 4);
    }

    #[test]
    fn builder_accepts_valid_and_rejects_invalid_configs() {
        let cfg = ClusterConfig::builder()
            .n_machines(16)
            .base_busy(0.3)
            .diurnal_amplitude(0.1)
            .history_len(100)
            .engine(EngineMode::DenseTick)
            .build()
            .unwrap();
        assert_eq!(cfg.n_machines, 16);
        assert_eq!(cfg.engine, EngineMode::DenseTick);
        assert!(ClusterConfig::builder().n_machines(0).build().is_err());
        assert!(ClusterConfig::builder().base_busy(1.5).build().is_err());
        assert!(ClusterConfig::builder()
            .base_busy(f64::NAN)
            .build()
            .is_err());
        assert!(ClusterConfig::builder()
            .diurnal_amplitude(-0.1)
            .build()
            .is_err());
        assert!(ClusterConfig::builder().history_len(0).build().is_err());
    }

    #[test]
    fn clusters_with_same_seed_evolve_identically() {
        let mut a = Cluster::new(11, ClusterConfig::default());
        let mut b = Cluster::new(11, ClusterConfig::default());
        a.advance(25);
        b.advance(25);
        assert_eq!(a.cluster_mean(), b.cluster_mean());
    }

    #[test]
    fn default_engine_is_event_driven() {
        assert_eq!(ClusterConfig::default().engine, EngineMode::EventDriven);
    }

    /// The load-bearing guarantee of this module: the event-driven and
    /// dense-tick engines are bit-identical through an interleaved sequence
    /// of advances, allocations, reads, and armed fault injection.
    #[test]
    fn engines_agree_bit_for_bit() {
        for seed in [1u64, 9, 42] {
            let mk = |engine| {
                let mut c = Cluster::new(
                    seed,
                    ClusterConfig {
                        n_machines: 32,
                        engine,
                        ..ClusterConfig::default()
                    },
                );
                c.set_fault_config(FaultConfig {
                    machine_fail_prob: 0.01,
                    machine_downtime_ticks: 11,
                    ..FaultConfig::chaos(seed)
                });
                c
            };
            let mut e = mk(EngineMode::EventDriven);
            let mut d = mk(EngineMode::DenseTick);
            for _ in 0..12 {
                e.advance(7);
                d.advance(7);
                let a = e.allocate(3, 0.2);
                let b = d.allocate(3, 0.2);
                assert_eq!(a, b, "allocation choices must match");
                assert_eq!(e.mean_load_of(&a), d.mean_load_of(&b));
                e.step();
                d.step();
                assert_eq!(e.mean_load_of(&a), d.mean_load_of(&b));
                assert_eq!(e.down_count(), d.down_count());
            }
            assert_eq!(e.fault_log(), d.fault_log());
            assert_eq!(e.cluster_mean(), d.cluster_mean());
            assert_eq!(e.history_mean(), d.history_mean());
            assert!(
                d.dense_checksum() != 0.0,
                "reference engine must do eager work"
            );
        }
    }

    /// Event-mode advancing is `O(events)`: a long quiet advance drains
    /// nothing, and armed faults produce a bounded, ordered event count.
    #[test]
    fn event_engine_counts_events_and_lazy_advances() {
        let mut c = Cluster::new(3, ClusterConfig::default());
        c.advance(10_000);
        assert_eq!(c.engine_stats().events, 0, "no faults, no events");
        assert_eq!(c.engine_stats().heap_peak, 0);

        c.set_fault_config(FaultConfig {
            machine_fail_prob: 0.005,
            ..FaultConfig::chaos(3)
        });
        c.advance(2_000);
        let stats = c.engine_stats();
        assert!(stats.events > 0, "armed faults must drain events");
        assert!(stats.heap_peak > 0);
        let m = c.allocate(4, 0.1);
        c.step();
        c.mean_load_of(&m);
        assert!(c.engine_stats().lazy_advances > stats.lazy_advances);
    }
}
