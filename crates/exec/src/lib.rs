//! # mcsim-exec
//!
//! The distributed execution simulator: a multi-tenant cluster whose machine
//! loads evolve stochastically with a diurnal cycle, a Fuxi-like allocator
//! that prefers idle machines, ground-truth cost physics built on exact
//! cardinalities, and a flighting environment for unbiased replays.
//!
//! This crate supplies the phenomena the LOAM paper's challenges are built
//! on: per-stage resource allocation and varying loads produce up-to-50 %
//! CPU-cost fluctuation for recurring queries (Figure 1), costs couple
//! roughly linearly to load metrics (Figure 5), and repeated executions are
//! log-normally distributed (Figure 15 / Appendix E.1).
//!
//! ## Example
//!
//! ```
//! use mcsim_catalog::{ProjectProfile, ProjectId};
//! use mcsim_exec::{Cluster, ClusterConfig, Executor};
//! use mcsim_optimizer::{NativeOptimizer, Knobs};
//!
//! let mut prof = ProjectProfile::evaluation_project(1).unwrap();
//! prof.n_tables = 12; prof.n_temp_tables = 2; prof.n_columns = 90; prof.n_templates = 6;
//! let project = prof.generate(ProjectId(1));
//! let opt = NativeOptimizer::new(&project.catalog);
//! let plan = opt.optimize(&project.workload_for_day(0)[0], &Knobs::default());
//!
//! let mut exec = Executor::new(1, Cluster::new(1, ClusterConfig::default()), 0.2);
//! let outcome = exec.execute(&plan, &project.catalog);
//! assert!(outcome.cpu_cost > 0.0);
//! ```

pub mod chaos;
pub mod cluster;
pub mod envmodel;
pub mod execute;
pub mod fault;
pub mod flighting;
pub mod history;
pub mod load;
pub mod machine;

pub use chaos::ChaosScenario;
pub use cluster::{
    Cluster, ClusterConfig, ClusterConfigBuilder, EngineMode, EngineStats, InvalidClusterConfig,
    TICKS_PER_DAY,
};
pub use envmodel::EnvModel;
pub use execute::{ExecutionOutcome, Executor};
pub use fault::{ExecFailure, FaultConfig, FaultEvent, FaultState, RetryPolicy};
pub use flighting::Flighting;
pub use history::{build_history, execute_and_log, HistoryOptions};
pub use load::{seed_stream, splitmix64, LoadModel, OU_WINDOW};
pub use machine::{LoadDynamics, Machine};
