//! Environment → cost coupling.
//!
//! The paper's Figure 5 shows a "discernible, roughly monotonic influence
//! \[of environmental features\] on plan costs that can be coarsely
//! approximated as linear". The simulator's ground truth is exactly that: an
//! affine multiplier over the four normalized load features.

use mcsim_catalog::env::lognorm_load5;
use mcsim_catalog::EnvMetrics;

/// Coefficients of the affine environment multiplier.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EnvModel {
    /// Weight on (1 − CPU_IDLE): contention for cycles.
    pub busy: f64,
    /// Weight on IO_WAIT: stalled reads.
    pub io: f64,
    /// Weight on log-normalized LOAD5: scheduler queueing.
    pub load5: f64,
    /// Weight on MEM_USAGE: cache pressure / spill likelihood.
    pub mem: f64,
}

impl Default for EnvModel {
    fn default() -> Self {
        EnvModel {
            busy: 1.1,
            io: 2.5,
            load5: 0.6,
            mem: 0.4,
        }
    }
}

impl EnvModel {
    /// The cost multiplier experienced under `env` (≥ 1).
    pub fn multiplier(&self, env: &EnvMetrics) -> f64 {
        1.0 + self.busy * (1.0 - env.cpu_idle)
            + self.io * env.io_wait
            + self.load5 * lognorm_load5(env.load5)
            + self.mem * env.mem_usage
    }

    /// The multiplier for a stage containing a spool: materialized
    /// intermediates dampen sensitivity to contention (a modest 7 %
    /// reduction of the excess — spooling is not free performance, it
    /// mostly buys re-execution robustness).
    pub fn spooled_multiplier(&self, env: &EnvMetrics) -> f64 {
        1.0 + 0.93 * (self.multiplier(env) - 1.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn idle_machine_has_small_multiplier() {
        let m = EnvModel::default();
        let idle = EnvMetrics::new(0.98, 0.0, 0.1, 0.1);
        let busy = EnvMetrics::new(0.1, 0.2, 30.0, 0.9);
        assert!(m.multiplier(&idle) < 1.2);
        assert!(m.multiplier(&busy) > 2.0);
    }

    #[test]
    fn multiplier_is_monotone_in_busy_fraction() {
        let m = EnvModel::default();
        let mut prev = 0.0;
        for i in 0..10 {
            let idle = 1.0 - i as f64 / 10.0;
            let mult = m.multiplier(&EnvMetrics::new(idle, 0.05, 4.0, 0.5));
            assert!(mult > prev);
            prev = mult;
        }
    }

    #[test]
    fn spool_dampens_excess() {
        let m = EnvModel::default();
        let busy = EnvMetrics::new(0.2, 0.1, 20.0, 0.8);
        let full = m.multiplier(&busy);
        let spooled = m.spooled_multiplier(&busy);
        assert!(spooled < full);
        assert!(spooled > 1.0);
        assert!((spooled - 1.0 - 0.93 * (full - 1.0)).abs() < 1e-12);
    }
}
