//! Seeded, deterministic fault injection for the simulated cluster.
//!
//! Production clusters fail in ways load noise never captures: machines die
//! and get blacklisted by Fuxi until they recover, individual stages straggle
//! behind their siblings, and preemption kills stage attempts outright. This
//! module injects all three — and every draw replays byte-for-byte from
//! [`FaultConfig::seed`], while a disabled config draws *nothing* from any
//! RNG, leaving the fault-free simulation bit-identical to a build without
//! this module.
//!
//! Machine failures are **event-scheduled**: instead of a per-tick Bernoulli
//! sweep over the whole pool (`O(machines)` every tick), each machine owns a
//! counter-based draw stream from which the cluster pulls geometric
//! inter-failure gaps (`⌊ln(1−U)/ln(1−p)⌋ + 1`, distributionally identical
//! to per-tick coin flips at rate `p`) and uniform downtimes — and schedules
//! them as queue events. Per-machine streams mean neither evaluation order
//! nor the engine (event vs dense) can perturb any machine's fault
//! trajectory. Stage-level faults (stragglers, kills) stay on a sequential
//! RNG: the executor samples them in a deterministic per-attempt order.

use crate::load::stream_uniform;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Stream id of the per-machine failure-schedule draws.
const STREAM_FAULT: u64 = 0x0fa1;

/// Fault-injection rates and magnitudes. The default config is fully
/// disabled (all probabilities zero); [`FaultConfig::chaos`] is the
/// reference "default fault rate" used by `experiments chaos`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Per-machine, per-tick probability of failing (and being blacklisted).
    pub machine_fail_prob: f64,
    /// Mean blacklist duration in cluster ticks; actual downtimes are drawn
    /// uniformly in `[downtime/2, downtime*3/2)`.
    pub machine_downtime_ticks: u64,
    /// Per-stage-attempt probability of the attempt being killed mid-flight
    /// (Fuxi preemption, container OOM, node loss under the stage).
    pub stage_kill_prob: f64,
    /// Per-stage-attempt probability of straggling.
    pub straggler_prob: f64,
    /// Upper bound of the straggler slowdown factor (drawn in
    /// `[1.2, straggler_slowdown)`).
    pub straggler_slowdown: f64,
    /// Seed of the fault RNG stream (independent from cluster/noise RNGs).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            machine_fail_prob: 0.0,
            machine_downtime_ticks: 90,
            stage_kill_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 3.0,
            seed: 0xfa_017,
        }
    }
}

impl FaultConfig {
    /// A fully disabled config: injects nothing, draws nothing.
    pub fn disabled() -> FaultConfig {
        FaultConfig::default()
    }

    /// The reference chaos rates (the "default fault rate" of
    /// `experiments chaos`): a few machine failures per simulated hour on a
    /// 200-machine pool, and a few percent of stage attempts killed or
    /// straggling.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            machine_fail_prob: 2.0e-4,
            machine_downtime_ticks: 90,
            stage_kill_prob: 0.03,
            straggler_prob: 0.08,
            straggler_slowdown: 3.0,
            seed,
        }
    }

    /// Scales every fault *probability* by `factor` (magnitudes and the seed
    /// are unchanged); probabilities are clamped to 0.95. `scaled(0.0)` is a
    /// disabled config.
    pub fn scaled(mut self, factor: f64) -> FaultConfig {
        let f = factor.max(0.0);
        self.machine_fail_prob = (self.machine_fail_prob * f).min(0.95);
        self.stage_kill_prob = (self.stage_kill_prob * f).min(0.95);
        self.straggler_prob = (self.straggler_prob * f).min(0.95);
        self
    }

    /// True if any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.machine_fail_prob > 0.0 || self.stage_kill_prob > 0.0 || self.straggler_prob > 0.0
    }
}

/// One entry of the canonical fault log — the replayable record the
/// determinism property tests compare byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A machine failed and was blacklisted until `until`.
    MachineDown { machine: u32, tick: u64, until: u64 },
    /// A blacklisted machine recovered and rejoined the pool.
    MachineUp { machine: u32, tick: u64 },
    /// A stage attempt straggled by `factor`.
    StageStraggled {
        stage: usize,
        attempt: u32,
        factor: f64,
    },
    /// A speculative backup was launched for a straggling attempt.
    SpeculativeLaunch {
        stage: usize,
        attempt: u32,
        tick: u64,
    },
    /// A stage attempt was killed mid-flight.
    StageKilled {
        stage: usize,
        attempt: u32,
        tick: u64,
    },
    /// The executor scheduled retry number `attempt` after backing off.
    StageRetried {
        stage: usize,
        attempt: u32,
        backoff_ticks: u64,
    },
}

/// The live fault-injection state a [`crate::Cluster`] carries: the config,
/// the stage-fault RNG, per-machine blacklist deadlines and draw-stream
/// positions, and the append-only event log.
#[derive(Debug, Clone)]
pub struct FaultState {
    config: FaultConfig,
    /// Sequential stream for stage-attempt faults (stragglers, kills) —
    /// sampled by the executor in deterministic per-attempt order.
    rng: StdRng,
    /// Blacklist deadline per machine; 0 = up.
    down_until: Vec<u64>,
    /// Per-machine position in the counter-based failure-schedule stream.
    draws: Vec<u64>,
    log: Vec<FaultEvent>,
}

impl FaultState {
    /// Creates the state for an `n_machines`-wide pool.
    pub fn new(config: FaultConfig, n_machines: usize) -> FaultState {
        let rng = StdRng::seed_from_u64(config.seed ^ 0xfa17_0bad);
        FaultState {
            config,
            rng,
            down_until: vec![0; n_machines],
            draws: vec![0; n_machines],
            log: Vec::new(),
        }
    }

    /// The next uniform draw of machine `m`'s dedicated stream.
    fn draw(&mut self, m: usize) -> f64 {
        let c = self.draws[m];
        self.draws[m] += 1;
        stream_uniform(self.config.seed ^ 0xfa17_0bad, STREAM_FAULT, m as u64, c)
    }

    /// Ticks until machine `m`'s next failure, drawn geometrically from its
    /// dedicated stream (equivalent to per-tick Bernoulli at
    /// `machine_fail_prob`, but scheduled as one event). `None` when machine
    /// failures are disabled — in which case *nothing* is drawn.
    pub(crate) fn next_failure_gap(&mut self, m: usize) -> Option<u64> {
        let p = self.config.machine_fail_prob;
        if p <= 0.0 {
            return None;
        }
        let u = self.draw(m);
        if p >= 1.0 {
            return Some(1);
        }
        let gap = ((1.0 - u).ln() / (1.0 - p).ln()).floor() + 1.0;
        Some(gap.clamp(1.0, 1.0e15) as u64)
    }

    /// Blacklist duration for machine `m`'s next failure, drawn uniformly
    /// in `[downtime/2, downtime·3/2)` from its dedicated stream.
    pub(crate) fn downtime_ticks(&mut self, m: usize) -> u64 {
        let lo = (self.config.machine_downtime_ticks / 2).max(1);
        let hi = (self.config.machine_downtime_ticks.saturating_mul(3) / 2).max(lo + 1);
        let u = self.draw(m);
        lo + ((hi - lo) as f64 * u) as u64
    }

    /// Blacklists machine `m` from `tick` until `until` and logs it.
    pub(crate) fn mark_down(&mut self, m: usize, tick: u64, until: u64) {
        self.down_until[m] = until;
        self.log.push(FaultEvent::MachineDown {
            machine: m as u32,
            tick,
            until,
        });
        mcsim_obs::counter("exec.fault.machine_failures", 1);
    }

    /// Returns machine `m` to the pool at `tick` and logs it.
    pub(crate) fn mark_up(&mut self, m: usize, tick: u64) {
        self.down_until[m] = 0;
        self.log.push(FaultEvent::MachineUp {
            machine: m as u32,
            tick,
        });
        mcsim_obs::counter("exec.fault.machine_recoveries", 1);
    }

    /// True if any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True if machine `i` is blacklisted at `tick`.
    pub fn is_down(&self, i: usize, tick: u64) -> bool {
        self.down_until.get(i).is_some_and(|&u| u > tick)
    }

    /// How many machines are blacklisted at `tick`.
    pub fn down_count(&self, tick: u64) -> usize {
        self.down_until.iter().filter(|&&u| u > tick).count()
    }

    /// The replayable fault log, in injection order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Samples whether a stage attempt straggles; returns the slowdown.
    pub(crate) fn sample_straggler(&mut self, stage: usize, attempt: u32) -> Option<f64> {
        if self.config.straggler_prob <= 0.0 || !self.rng.gen_bool(self.config.straggler_prob) {
            return None;
        }
        let hi = self.config.straggler_slowdown.max(1.2 + 1e-9);
        let factor = self.rng.gen_range(1.2..hi);
        self.log.push(FaultEvent::StageStraggled {
            stage,
            attempt,
            factor,
        });
        Some(factor)
    }

    /// Samples whether a stage attempt is killed; returns the fraction of
    /// the attempt's work already done (and therefore wasted).
    pub(crate) fn sample_stage_kill(
        &mut self,
        stage: usize,
        attempt: u32,
        tick: u64,
    ) -> Option<f64> {
        if self.config.stage_kill_prob <= 0.0 || !self.rng.gen_bool(self.config.stage_kill_prob) {
            return None;
        }
        let progress = self.rng.gen_range(0.05..0.95);
        self.log.push(FaultEvent::StageKilled {
            stage,
            attempt,
            tick,
        });
        Some(progress)
    }

    /// Records a speculative backup launch.
    pub(crate) fn record_speculative(&mut self, stage: usize, attempt: u32, tick: u64) {
        self.log.push(FaultEvent::SpeculativeLaunch {
            stage,
            attempt,
            tick,
        });
    }

    /// Records a scheduled retry.
    pub(crate) fn record_retry(&mut self, stage: usize, attempt: u32, backoff_ticks: u64) {
        self.log.push(FaultEvent::StageRetried {
            stage,
            attempt,
            backoff_ticks,
        });
    }
}

/// Retry, speculation, and deadline policy of an [`crate::Executor`]. The
/// default policy retries killed stages with exponential backoff, launches
/// speculative backups for severe stragglers, and imposes no deadline — all
/// of which is inert while fault injection is disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retry budget per stage (0 = fail on the first kill).
    pub max_retries: u32,
    /// Backoff before retry number 1, in cluster ticks.
    pub backoff_base_ticks: u64,
    /// Backoff growth per retry (exponential).
    pub backoff_multiplier: f64,
    /// Backoff ceiling, in cluster ticks.
    pub max_backoff_ticks: u64,
    /// Per-query deadline in cluster ticks (`None` = unbounded). Checked
    /// after every stage; exceeding it fails the query.
    pub deadline_ticks: Option<u64>,
    /// Launch a speculative backup when a straggler exceeds the threshold.
    pub speculative: bool,
    /// Straggle factor beyond which a backup launches; the backup caps the
    /// effective slowdown at this threshold.
    pub speculative_threshold: f64,
    /// Extra CPU-cost fraction the duplicate attempt burns.
    pub speculative_overhead: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ticks: 4,
            backoff_multiplier: 2.0,
            max_backoff_ticks: 240,
            deadline_ticks: None,
            speculative: true,
            speculative_threshold: 1.8,
            speculative_overhead: 0.35,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries, never speculates, never times out.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            speculative: false,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry `attempt + 1` (attempts are 0-based), clamped to
    /// `[1, max_backoff_ticks]`.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let raw = self.backoff_base_ticks as f64 * self.backoff_multiplier.powi(attempt as i32);
        (raw as u64).clamp(1, self.max_backoff_ticks.max(1))
    }
}

/// Why a fallible execution gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecFailure {
    /// A stage exhausted its retry budget.
    StageFailed { stage: usize, attempts: u32 },
    /// The query blew through its deadline.
    DeadlineExceeded {
        deadline_ticks: u64,
        elapsed_ticks: u64,
    },
}

impl std::fmt::Display for ExecFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecFailure::StageFailed { stage, attempts } => {
                write!(f, "stage {stage} failed after {attempts} attempt(s)")
            }
            ExecFailure::DeadlineExceeded {
                deadline_ticks,
                elapsed_ticks,
            } => write!(
                f,
                "query deadline of {deadline_ticks} ticks exceeded ({elapsed_ticks} elapsed)"
            ),
        }
    }
}

impl std::error::Error for ExecFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled_and_chaos_is_not() {
        assert!(!FaultConfig::default().enabled());
        assert!(!FaultConfig::disabled().enabled());
        assert!(FaultConfig::chaos(1).enabled());
        assert!(!FaultConfig::chaos(1).scaled(0.0).enabled());
    }

    #[test]
    fn scaling_multiplies_probabilities_and_clamps() {
        let c = FaultConfig::chaos(7).scaled(2.0);
        assert!((c.stage_kill_prob - 0.06).abs() < 1e-12);
        assert!((c.straggler_prob - 0.16).abs() < 1e-12);
        let extreme = FaultConfig::chaos(7).scaled(1e9);
        assert_eq!(extreme.stage_kill_prob, 0.95);
        assert_eq!(extreme.seed, 7, "scaling must not touch the seed");
    }

    #[test]
    fn backoff_grows_exponentially_and_clamps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ticks(0), 4);
        assert_eq!(p.backoff_ticks(1), 8);
        assert_eq!(p.backoff_ticks(2), 16);
        assert_eq!(p.backoff_ticks(30), p.max_backoff_ticks);
        assert!(RetryPolicy::none().max_retries == 0);
    }

    #[test]
    fn same_seed_gives_identical_failure_schedules() {
        let cfg = FaultConfig {
            machine_fail_prob: 0.05,
            ..FaultConfig::chaos(42)
        };
        let mut a = FaultState::new(cfg.clone(), 16);
        let mut b = FaultState::new(cfg, 16);
        for m in 0..16 {
            assert_eq!(a.next_failure_gap(m), b.next_failure_gap(m));
            assert_eq!(a.downtime_ticks(m), b.downtime_ticks(m));
        }
        let _ = a.sample_straggler(0, 0);
        let _ = b.sample_straggler(0, 0);
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn failure_gaps_are_independent_of_draw_order() {
        let cfg = FaultConfig {
            machine_fail_prob: 0.05,
            ..FaultConfig::chaos(42)
        };
        let mut fwd = FaultState::new(cfg.clone(), 16);
        let mut rev = FaultState::new(cfg, 16);
        let a: Vec<_> = (0..16).map(|m| fwd.next_failure_gap(m)).collect();
        let mut b: Vec<_> = (0..16).rev().map(|m| rev.next_failure_gap(m)).collect();
        b.reverse();
        assert_eq!(a, b, "per-machine streams must not interleave");
    }

    #[test]
    fn failure_gaps_match_the_bernoulli_rate() {
        // Geometric gaps with success probability p have mean 1/p.
        let cfg = FaultConfig {
            machine_fail_prob: 0.02,
            ..FaultConfig::chaos(9)
        };
        let mut s = FaultState::new(cfg, 4);
        let n = 4_000;
        let total: u64 = (0..n).map(|_| s.next_failure_gap(1).unwrap()).sum();
        let mean = total as f64 / n as f64;
        assert!(
            (mean - 50.0).abs() < 3.0,
            "mean gap {mean} should approximate 1/p = 50"
        );
    }

    #[test]
    fn machines_go_down_and_come_back() {
        let cfg = FaultConfig {
            machine_fail_prob: 0.2,
            machine_downtime_ticks: 10,
            ..FaultConfig::chaos(3)
        };
        let mut s = FaultState::new(cfg, 8);
        let gap = s.next_failure_gap(2).unwrap();
        let down_at = gap;
        let until = down_at + s.downtime_ticks(2);
        s.mark_down(2, down_at, until);
        assert!(s.is_down(2, down_at));
        assert_eq!(s.down_count(down_at), 1);
        assert!(!s.is_down(2, until), "deadline tick is already up");
        s.mark_up(2, until);
        assert_eq!(s.down_count(until), 0);
        let kinds: Vec<bool> = s
            .log()
            .iter()
            .map(|ev| matches!(ev, FaultEvent::MachineUp { .. }))
            .collect();
        assert_eq!(kinds, vec![false, true], "down then up");
    }

    #[test]
    fn disabled_state_never_logs_or_draws() {
        let mut s = FaultState::new(FaultConfig::disabled(), 8);
        for m in 0..8 {
            assert!(s.next_failure_gap(m).is_none());
        }
        assert!(s.sample_straggler(0, 0).is_none());
        assert!(s.sample_stage_kill(0, 0, 0).is_none());
        assert!(s.log().is_empty());
        assert_eq!(s.down_count(50), 0);
    }

    #[test]
    fn exec_failure_displays_are_informative() {
        let e = ExecFailure::StageFailed {
            stage: 3,
            attempts: 4,
        };
        assert!(e.to_string().contains("stage 3"));
        let e = ExecFailure::DeadlineExceeded {
            deadline_ticks: 100,
            elapsed_ticks: 140,
        };
        assert!(e.to_string().contains("deadline"));
    }
}
