//! Seeded, deterministic fault injection for the simulated cluster.
//!
//! Production clusters fail in ways load noise never captures: machines die
//! and get blacklisted by Fuxi until they recover, individual stages straggle
//! behind their siblings, and preemption kills stage attempts outright. This
//! module injects all three, driven by a dedicated RNG stream seeded from
//! [`FaultConfig::seed`] — so every chaos scenario replays byte-for-byte
//! from its seed, and a disabled config draws *nothing* from any RNG,
//! leaving the fault-free simulation bit-identical to a build without this
//! module.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Fault-injection rates and magnitudes. The default config is fully
/// disabled (all probabilities zero); [`FaultConfig::chaos`] is the
/// reference "default fault rate" used by `experiments chaos`.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultConfig {
    /// Per-machine, per-tick probability of failing (and being blacklisted).
    pub machine_fail_prob: f64,
    /// Mean blacklist duration in cluster ticks; actual downtimes are drawn
    /// uniformly in `[downtime/2, downtime*3/2)`.
    pub machine_downtime_ticks: u64,
    /// Per-stage-attempt probability of the attempt being killed mid-flight
    /// (Fuxi preemption, container OOM, node loss under the stage).
    pub stage_kill_prob: f64,
    /// Per-stage-attempt probability of straggling.
    pub straggler_prob: f64,
    /// Upper bound of the straggler slowdown factor (drawn in
    /// `[1.2, straggler_slowdown)`).
    pub straggler_slowdown: f64,
    /// Seed of the fault RNG stream (independent from cluster/noise RNGs).
    pub seed: u64,
}

impl Default for FaultConfig {
    fn default() -> Self {
        FaultConfig {
            machine_fail_prob: 0.0,
            machine_downtime_ticks: 90,
            stage_kill_prob: 0.0,
            straggler_prob: 0.0,
            straggler_slowdown: 3.0,
            seed: 0xfa_017,
        }
    }
}

impl FaultConfig {
    /// A fully disabled config: injects nothing, draws nothing.
    pub fn disabled() -> FaultConfig {
        FaultConfig::default()
    }

    /// The reference chaos rates (the "default fault rate" of
    /// `experiments chaos`): a few machine failures per simulated hour on a
    /// 200-machine pool, and a few percent of stage attempts killed or
    /// straggling.
    pub fn chaos(seed: u64) -> FaultConfig {
        FaultConfig {
            machine_fail_prob: 2.0e-4,
            machine_downtime_ticks: 90,
            stage_kill_prob: 0.03,
            straggler_prob: 0.08,
            straggler_slowdown: 3.0,
            seed,
        }
    }

    /// Scales every fault *probability* by `factor` (magnitudes and the seed
    /// are unchanged); probabilities are clamped to 0.95. `scaled(0.0)` is a
    /// disabled config.
    pub fn scaled(mut self, factor: f64) -> FaultConfig {
        let f = factor.max(0.0);
        self.machine_fail_prob = (self.machine_fail_prob * f).min(0.95);
        self.stage_kill_prob = (self.stage_kill_prob * f).min(0.95);
        self.straggler_prob = (self.straggler_prob * f).min(0.95);
        self
    }

    /// True if any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.machine_fail_prob > 0.0 || self.stage_kill_prob > 0.0 || self.straggler_prob > 0.0
    }
}

/// One entry of the canonical fault log — the replayable record the
/// determinism property tests compare byte-for-byte.
#[derive(Debug, Clone, PartialEq)]
pub enum FaultEvent {
    /// A machine failed and was blacklisted until `until`.
    MachineDown { machine: u32, tick: u64, until: u64 },
    /// A blacklisted machine recovered and rejoined the pool.
    MachineUp { machine: u32, tick: u64 },
    /// A stage attempt straggled by `factor`.
    StageStraggled {
        stage: usize,
        attempt: u32,
        factor: f64,
    },
    /// A speculative backup was launched for a straggling attempt.
    SpeculativeLaunch {
        stage: usize,
        attempt: u32,
        tick: u64,
    },
    /// A stage attempt was killed mid-flight.
    StageKilled {
        stage: usize,
        attempt: u32,
        tick: u64,
    },
    /// The executor scheduled retry number `attempt` after backing off.
    StageRetried {
        stage: usize,
        attempt: u32,
        backoff_ticks: u64,
    },
}

/// The live fault-injection state a [`crate::Cluster`] carries: the config,
/// the dedicated fault RNG, per-machine blacklist deadlines, and the
/// append-only event log.
#[derive(Debug, Clone)]
pub struct FaultState {
    config: FaultConfig,
    rng: StdRng,
    /// Blacklist deadline per machine; 0 = up.
    down_until: Vec<u64>,
    log: Vec<FaultEvent>,
}

impl FaultState {
    /// Creates the state for an `n_machines`-wide pool.
    pub fn new(config: FaultConfig, n_machines: usize) -> FaultState {
        let rng = StdRng::seed_from_u64(config.seed ^ 0xfa17_0bad);
        FaultState {
            config,
            rng,
            down_until: vec![0; n_machines],
            log: Vec::new(),
        }
    }

    /// True if any fault class can fire.
    pub fn enabled(&self) -> bool {
        self.config.enabled()
    }

    /// The active configuration.
    pub fn config(&self) -> &FaultConfig {
        &self.config
    }

    /// True if machine `i` is blacklisted at `tick`.
    pub fn is_down(&self, i: usize, tick: u64) -> bool {
        self.down_until.get(i).is_some_and(|&u| u > tick)
    }

    /// How many machines are blacklisted at `tick`.
    pub fn down_count(&self, tick: u64) -> usize {
        self.down_until.iter().filter(|&&u| u > tick).count()
    }

    /// The replayable fault log, in injection order.
    pub fn log(&self) -> &[FaultEvent] {
        &self.log
    }

    /// Samples machine failures and recoveries for one cluster tick.
    pub(crate) fn tick_machines(&mut self, tick: u64) {
        for i in 0..self.down_until.len() {
            if self.down_until[i] != 0 {
                if tick >= self.down_until[i] {
                    self.down_until[i] = 0;
                    self.log.push(FaultEvent::MachineUp {
                        machine: i as u32,
                        tick,
                    });
                    mcsim_obs::counter("exec.fault.machine_recoveries", 1);
                }
            } else if self.config.machine_fail_prob > 0.0
                && self.rng.gen_bool(self.config.machine_fail_prob)
            {
                let lo = (self.config.machine_downtime_ticks / 2).max(1);
                let hi = (self.config.machine_downtime_ticks.saturating_mul(3) / 2).max(lo + 1);
                let until = tick + self.rng.gen_range(lo..hi);
                self.down_until[i] = until;
                self.log.push(FaultEvent::MachineDown {
                    machine: i as u32,
                    tick,
                    until,
                });
                mcsim_obs::counter("exec.fault.machine_failures", 1);
            }
        }
    }

    /// Samples whether a stage attempt straggles; returns the slowdown.
    pub(crate) fn sample_straggler(&mut self, stage: usize, attempt: u32) -> Option<f64> {
        if self.config.straggler_prob <= 0.0 || !self.rng.gen_bool(self.config.straggler_prob) {
            return None;
        }
        let hi = self.config.straggler_slowdown.max(1.2 + 1e-9);
        let factor = self.rng.gen_range(1.2..hi);
        self.log.push(FaultEvent::StageStraggled {
            stage,
            attempt,
            factor,
        });
        Some(factor)
    }

    /// Samples whether a stage attempt is killed; returns the fraction of
    /// the attempt's work already done (and therefore wasted).
    pub(crate) fn sample_stage_kill(
        &mut self,
        stage: usize,
        attempt: u32,
        tick: u64,
    ) -> Option<f64> {
        if self.config.stage_kill_prob <= 0.0 || !self.rng.gen_bool(self.config.stage_kill_prob) {
            return None;
        }
        let progress = self.rng.gen_range(0.05..0.95);
        self.log.push(FaultEvent::StageKilled {
            stage,
            attempt,
            tick,
        });
        Some(progress)
    }

    /// Records a speculative backup launch.
    pub(crate) fn record_speculative(&mut self, stage: usize, attempt: u32, tick: u64) {
        self.log.push(FaultEvent::SpeculativeLaunch {
            stage,
            attempt,
            tick,
        });
    }

    /// Records a scheduled retry.
    pub(crate) fn record_retry(&mut self, stage: usize, attempt: u32, backoff_ticks: u64) {
        self.log.push(FaultEvent::StageRetried {
            stage,
            attempt,
            backoff_ticks,
        });
    }
}

/// Retry, speculation, and deadline policy of an [`crate::Executor`]. The
/// default policy retries killed stages with exponential backoff, launches
/// speculative backups for severe stragglers, and imposes no deadline — all
/// of which is inert while fault injection is disabled.
#[derive(Debug, Clone, PartialEq)]
pub struct RetryPolicy {
    /// Retry budget per stage (0 = fail on the first kill).
    pub max_retries: u32,
    /// Backoff before retry number 1, in cluster ticks.
    pub backoff_base_ticks: u64,
    /// Backoff growth per retry (exponential).
    pub backoff_multiplier: f64,
    /// Backoff ceiling, in cluster ticks.
    pub max_backoff_ticks: u64,
    /// Per-query deadline in cluster ticks (`None` = unbounded). Checked
    /// after every stage; exceeding it fails the query.
    pub deadline_ticks: Option<u64>,
    /// Launch a speculative backup when a straggler exceeds the threshold.
    pub speculative: bool,
    /// Straggle factor beyond which a backup launches; the backup caps the
    /// effective slowdown at this threshold.
    pub speculative_threshold: f64,
    /// Extra CPU-cost fraction the duplicate attempt burns.
    pub speculative_overhead: f64,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_retries: 3,
            backoff_base_ticks: 4,
            backoff_multiplier: 2.0,
            max_backoff_ticks: 240,
            deadline_ticks: None,
            speculative: true,
            speculative_threshold: 1.8,
            speculative_overhead: 0.35,
        }
    }
}

impl RetryPolicy {
    /// A policy that never retries, never speculates, never times out.
    pub fn none() -> RetryPolicy {
        RetryPolicy {
            max_retries: 0,
            speculative: false,
            ..RetryPolicy::default()
        }
    }

    /// Backoff before retry `attempt + 1` (attempts are 0-based), clamped to
    /// `[1, max_backoff_ticks]`.
    pub fn backoff_ticks(&self, attempt: u32) -> u64 {
        let raw = self.backoff_base_ticks as f64 * self.backoff_multiplier.powi(attempt as i32);
        (raw as u64).clamp(1, self.max_backoff_ticks.max(1))
    }
}

/// Why a fallible execution gave up.
#[derive(Debug, Clone, PartialEq)]
pub enum ExecFailure {
    /// A stage exhausted its retry budget.
    StageFailed { stage: usize, attempts: u32 },
    /// The query blew through its deadline.
    DeadlineExceeded {
        deadline_ticks: u64,
        elapsed_ticks: u64,
    },
}

impl std::fmt::Display for ExecFailure {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ExecFailure::StageFailed { stage, attempts } => {
                write!(f, "stage {stage} failed after {attempts} attempt(s)")
            }
            ExecFailure::DeadlineExceeded {
                deadline_ticks,
                elapsed_ticks,
            } => write!(
                f,
                "query deadline of {deadline_ticks} ticks exceeded ({elapsed_ticks} elapsed)"
            ),
        }
    }
}

impl std::error::Error for ExecFailure {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_config_is_disabled_and_chaos_is_not() {
        assert!(!FaultConfig::default().enabled());
        assert!(!FaultConfig::disabled().enabled());
        assert!(FaultConfig::chaos(1).enabled());
        assert!(!FaultConfig::chaos(1).scaled(0.0).enabled());
    }

    #[test]
    fn scaling_multiplies_probabilities_and_clamps() {
        let c = FaultConfig::chaos(7).scaled(2.0);
        assert!((c.stage_kill_prob - 0.06).abs() < 1e-12);
        assert!((c.straggler_prob - 0.16).abs() < 1e-12);
        let extreme = FaultConfig::chaos(7).scaled(1e9);
        assert_eq!(extreme.stage_kill_prob, 0.95);
        assert_eq!(extreme.seed, 7, "scaling must not touch the seed");
    }

    #[test]
    fn backoff_grows_exponentially_and_clamps() {
        let p = RetryPolicy::default();
        assert_eq!(p.backoff_ticks(0), 4);
        assert_eq!(p.backoff_ticks(1), 8);
        assert_eq!(p.backoff_ticks(2), 16);
        assert_eq!(p.backoff_ticks(30), p.max_backoff_ticks);
        assert!(RetryPolicy::none().max_retries == 0);
    }

    #[test]
    fn same_seed_same_tick_sequence_gives_identical_logs() {
        let cfg = FaultConfig {
            machine_fail_prob: 0.05,
            ..FaultConfig::chaos(42)
        };
        let mut a = FaultState::new(cfg.clone(), 16);
        let mut b = FaultState::new(cfg, 16);
        for t in 0..500 {
            a.tick_machines(t);
            b.tick_machines(t);
        }
        let _ = a.sample_straggler(0, 0);
        let _ = b.sample_straggler(0, 0);
        assert!(!a.log().is_empty(), "5% per-tick failures must fire");
        assert_eq!(a.log(), b.log());
    }

    #[test]
    fn machines_go_down_and_come_back() {
        let cfg = FaultConfig {
            machine_fail_prob: 0.2,
            machine_downtime_ticks: 10,
            ..FaultConfig::chaos(3)
        };
        let mut s = FaultState::new(cfg, 8);
        let mut saw_down = false;
        let mut saw_up = false;
        for t in 0..200 {
            s.tick_machines(t);
            saw_down |= s.down_count(t) > 0;
        }
        for ev in s.log() {
            saw_up |= matches!(ev, FaultEvent::MachineUp { .. });
        }
        assert!(saw_down && saw_up, "down={saw_down} up={saw_up}");
        // After a long quiet period every blacklist deadline has passed.
        assert_eq!(s.down_count(1_000_000), 0);
    }

    #[test]
    fn disabled_state_never_logs_or_draws() {
        let mut s = FaultState::new(FaultConfig::disabled(), 8);
        for t in 0..100 {
            s.tick_machines(t);
        }
        assert!(s.sample_straggler(0, 0).is_none());
        assert!(s.sample_stage_kill(0, 0, 0).is_none());
        assert!(s.log().is_empty());
        assert_eq!(s.down_count(50), 0);
    }

    #[test]
    fn exec_failure_displays_are_informative() {
        let e = ExecFailure::StageFailed {
            stage: 3,
            attempts: 4,
        };
        assert!(e.to_string().contains("stage 3"));
        let e = ExecFailure::DeadlineExceeded {
            deadline_ticks: 100,
            elapsed_ticks: 140,
        };
        assert!(e.to_string().contains("deadline"));
    }
}
