//! A reusable chaos-test harness: declaratively build a fault-armed,
//! warmed-up [`Executor`] that replays byte-for-byte from one seed.
//!
//! Integration tests (and `experiments chaos`) describe a failure scenario —
//! cluster shape, fault rates, retry policy, warm-up — once, then `build()`
//! as many identical executors as they need:
//!
//! ```
//! use mcsim_exec::{ChaosScenario, FaultConfig};
//!
//! let scenario = ChaosScenario::new(0xc4a0).fault_scale(2.0);
//! let a = scenario.build();
//! let b = scenario.build();
//! assert_eq!(a.cluster.fault_log(), b.cluster.fault_log()); // both empty, same state
//! ```

use crate::cluster::{Cluster, ClusterConfig, EngineMode};
use crate::execute::Executor;
use crate::fault::{FaultConfig, RetryPolicy};

/// Builder for deterministic fault-injection scenarios.
#[derive(Debug, Clone, PartialEq)]
pub struct ChaosScenario {
    seed: u64,
    cluster: ClusterConfig,
    fault: FaultConfig,
    retry: RetryPolicy,
    noise_sigma: f64,
    warmup_ticks: u64,
}

impl ChaosScenario {
    /// A scenario at the reference chaos rates ([`FaultConfig::chaos`]),
    /// default cluster and retry policy, and a 120-tick warm-up. Everything
    /// — loads, faults, noise — derives from `seed`.
    pub fn new(seed: u64) -> ChaosScenario {
        ChaosScenario {
            seed,
            cluster: ClusterConfig::default(),
            fault: FaultConfig::chaos(seed ^ 0xc0a5),
            retry: RetryPolicy::default(),
            noise_sigma: 0.2,
            warmup_ticks: 120,
        }
    }

    /// The scenario seed.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Overrides the cluster configuration.
    pub fn cluster(mut self, config: ClusterConfig) -> Self {
        self.cluster = config;
        self
    }

    /// Overrides the fault configuration wholesale.
    pub fn fault(mut self, config: FaultConfig) -> Self {
        self.fault = config;
        self
    }

    /// Selects the simulation core (event-driven by default; the dense
    /// tick loop is the bit-identical reference engine).
    pub fn engine(mut self, mode: EngineMode) -> Self {
        self.cluster.engine = mode;
        self
    }

    /// Scales every fault probability (`0.0` disables injection entirely —
    /// the resulting executor is bit-identical to a fault-free one).
    pub fn fault_scale(mut self, factor: f64) -> Self {
        self.fault = self.fault.scaled(factor);
        self
    }

    /// Overrides the retry/speculation/deadline policy.
    pub fn retry(mut self, policy: RetryPolicy) -> Self {
        self.retry = policy;
        self
    }

    /// Overrides the log-normal execution-noise σ.
    pub fn noise_sigma(mut self, sigma: f64) -> Self {
        self.noise_sigma = sigma;
        self
    }

    /// Overrides how many ticks the cluster runs before the scenario starts
    /// (so loads and history buffers are realistic).
    pub fn warmup_ticks(mut self, ticks: u64) -> Self {
        self.warmup_ticks = ticks;
        self
    }

    /// Builds the scenario's executor: seeded cluster, armed fault
    /// injection, retry policy installed, warm-up applied. Two `build()`s of
    /// the same scenario yield executors that evolve identically.
    pub fn build(&self) -> Executor {
        let mut cluster = Cluster::new(self.seed ^ 0xc11a05, self.cluster.clone());
        cluster.set_fault_config(self.fault.clone());
        let mut exec = Executor::new(self.seed ^ 0xc11a06, cluster, self.noise_sigma);
        exec.retry = self.retry.clone();
        exec.cluster.advance(self.warmup_ticks);
        exec
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mcsim_catalog::{ProjectId, ProjectProfile};
    use mcsim_optimizer::{Knobs, NativeOptimizer};

    fn project() -> mcsim_catalog::Project {
        let mut prof = ProjectProfile::evaluation_project(1).unwrap();
        prof.n_tables = 20;
        prof.n_temp_tables = 2;
        prof.n_columns = 160;
        prof.n_templates = 10;
        prof.generate(ProjectId(1))
    }

    #[test]
    fn same_scenario_builds_identical_executors() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let plan = opt.optimize(&p.workload_for_day(0)[0], &Knobs::default());
        let scenario = ChaosScenario::new(0xabc).fault_scale(2.0);
        let mut a = scenario.build();
        let mut b = scenario.build();
        for _ in 0..10 {
            let ra = a.try_execute(&plan, &p.catalog);
            let rb = b.try_execute(&plan, &p.catalog);
            assert_eq!(ra, rb);
        }
        assert_eq!(a.cluster.fault_log(), b.cluster.fault_log());
        assert_eq!(a.cluster.tick_count(), b.cluster.tick_count());
    }

    #[test]
    fn fault_scale_zero_is_bit_identical_to_fault_free() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let plan = opt.optimize(&p.workload_for_day(0)[0], &Knobs::default());
        let scenario = ChaosScenario::new(99);
        let mut off = scenario.clone().fault_scale(0.0).build();
        let mut plain = scenario.clone().fault(FaultConfig::disabled()).build();
        for _ in 0..5 {
            let a = off.try_execute(&plan, &p.catalog).unwrap();
            let b = plain.try_execute(&plan, &p.catalog).unwrap();
            assert_eq!(a, b);
            assert_eq!(a.retries, 0);
            assert_eq!(a.wasted_cost, 0.0);
            assert_eq!(a.speculative_launches, 0);
        }
        assert!(off.cluster.fault_log().is_empty());
    }

    #[test]
    fn armed_scenario_eventually_injects_faults() {
        let p = project();
        let opt = NativeOptimizer::new(&p.catalog);
        let plan = opt.optimize(&p.workload_for_day(0)[0], &Knobs::default());
        let mut exec = ChaosScenario::new(0xfee1).fault_scale(4.0).build();
        for _ in 0..40 {
            let _ = exec.try_execute(&plan, &p.catalog);
        }
        assert!(
            !exec.cluster.fault_log().is_empty(),
            "4x chaos rates over 40 queries must inject something"
        );
    }
}
