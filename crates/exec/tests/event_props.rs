//! Property tests of the discrete-event simulation core: the event-driven
//! engine is bit-identical to the dense per-tick reference engine, the
//! event queue never pops out of time order, and lazy evaluation at a
//! jumped-to tick equals step-by-step ticking to exact f64 equality.
//!
//! These are the guarantees that let the event engine replace the dense
//! loop as the default: anything the dense engine would have computed —
//! loads, allocation choices, fault schedules, execution outcomes — the
//! event engine computes identically, while doing `O(events)` work per
//! advance instead of `O(machines × ticks)`.

use mcsim_exec::{ChaosScenario, Cluster, ClusterConfig, EngineMode, FaultConfig, FaultEvent};
use proptest::prelude::*;

fn project(seed: u64) -> mcsim_catalog::Project {
    let mut prof = mcsim_catalog::ProjectProfile::random(seed);
    prof.n_tables = prof.n_tables.clamp(8, 18);
    prof.n_temp_tables = prof.n_temp_tables.min(2);
    prof.n_columns = prof.n_columns.clamp(60, 140);
    prof.n_templates = prof.n_templates.clamp(4, 8);
    prof.generate(mcsim_catalog::ProjectId(1))
}

/// A small cluster in the requested engine mode, optionally fault-armed.
fn cluster(
    seed: u64,
    n_machines: usize,
    engine: EngineMode,
    fault: Option<FaultConfig>,
) -> Cluster {
    let mut c = Cluster::new(
        seed,
        ClusterConfig {
            n_machines,
            engine,
            ..ClusterConfig::default()
        },
    );
    if let Some(f) = fault {
        c.set_fault_config(f);
    }
    c
}

/// Every time-stamped entry of a fault log, in log order.
fn log_ticks(log: &[FaultEvent]) -> Vec<u64> {
    log.iter()
        .filter_map(|ev| match ev {
            FaultEvent::MachineDown { tick, .. } | FaultEvent::MachineUp { tick, .. } => {
                Some(*tick)
            }
            _ => None,
        })
        .collect()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(10))]

    /// Tentpole guarantee, cluster level: over random seeds, pool sizes,
    /// and fault configurations, an interleaved sequence of advances,
    /// allocations, and reads leaves the event-driven and dense-tick
    /// engines in bit-identical states.
    #[test]
    fn engines_are_bit_identical_across_random_scenarios(
        seed in 0u64..10_000,
        n_machines in 2usize..48,
        fail_prob_x1e4 in 0u64..200,   // 0 .. 0.02 per machine-tick
        downtime in 2u64..60,
        advance in 1u64..40,
        rounds in 1usize..10,
    ) {
        let fault = FaultConfig {
            machine_fail_prob: fail_prob_x1e4 as f64 / 1.0e4,
            machine_downtime_ticks: downtime,
            ..FaultConfig::chaos(seed ^ 0xfa)
        };
        let mut e = cluster(seed, n_machines, EngineMode::EventDriven, Some(fault.clone()));
        let mut d = cluster(seed, n_machines, EngineMode::DenseTick, Some(fault));
        for round in 0..rounds {
            e.advance(advance);
            d.advance(advance);
            let want = 1 + round % 5;
            let a = e.allocate(want, 0.15);
            let b = d.allocate(want, 0.15);
            prop_assert_eq!(&a, &b, "allocation choices diverged");
            prop_assert_eq!(e.mean_load_of(&a), d.mean_load_of(&b));
            prop_assert_eq!(e.down_count(), d.down_count());
            let probe = (seed as usize + round) % n_machines;
            let (me, md) = (e.machine(probe), d.machine(probe));
            prop_assert_eq!(me.load, md.load);
            prop_assert_eq!(me.assigned_busy.to_bits(), md.assigned_busy.to_bits());
        }
        prop_assert_eq!(e.fault_log(), d.fault_log());
        prop_assert_eq!(e.tick_count(), d.tick_count());
        prop_assert_eq!(e.cluster_mean(), d.cluster_mean());
        prop_assert_eq!(e.history_mean(), d.history_mean());
    }

    /// Tentpole guarantee, executor level: a full chaos scenario — warm-up,
    /// fault injection, retries, speculative launches, log-normal noise —
    /// produces bit-identical execution outcomes on both engines.
    #[test]
    fn executors_on_both_engines_produce_identical_outcomes(
        seed in 0u64..2_000,
        scale_x10 in 0u64..30,
    ) {
        let p = project(seed);
        let opt = mcsim_optimizer::NativeOptimizer::new(&p.catalog);
        let plan = opt.optimize(
            &p.workload_for_day(0)[0],
            &mcsim_optimizer::Knobs::default(),
        );
        let base = ChaosScenario::new(seed ^ 0xe7e0).fault_scale(scale_x10 as f64 / 10.0);
        let mut ev = base.clone().engine(EngineMode::EventDriven).build();
        let mut dn = base.engine(EngineMode::DenseTick).build();
        for _ in 0..4 {
            let a = ev.try_execute(&plan, &p.catalog);
            let b = dn.try_execute(&plan, &p.catalog);
            prop_assert_eq!(a, b);
        }
        prop_assert_eq!(ev.cluster.fault_log(), dn.cluster.fault_log());
        prop_assert_eq!(ev.cluster.tick_count(), dn.cluster.tick_count());
    }

    /// The event queue never pops out of time order: the fault log — which
    /// is appended to exclusively by popped events — is non-decreasing in
    /// tick, no logged event is in the simulated future, and every
    /// recovery lands exactly at its failure's `until`.
    #[test]
    fn heap_never_pops_out_of_time_order(
        seed in 0u64..10_000,
        n_machines in 1usize..32,
        downtime in 2u64..40,
        jumps in proptest::collection::vec(1u64..200, 1..12),
    ) {
        let fault = FaultConfig {
            machine_fail_prob: 0.02, // hot enough to queue many overlapping timers
            machine_downtime_ticks: downtime,
            ..FaultConfig::chaos(seed ^ 0x0dd)
        };
        let mut c = cluster(seed, n_machines, EngineMode::EventDriven, Some(fault));
        for n in jumps {
            c.advance(n);
            let ticks = log_ticks(c.fault_log());
            prop_assert!(
                ticks.windows(2).all(|w| w[0] <= w[1]),
                "fault log out of time order: {ticks:?}"
            );
            prop_assert!(
                ticks.last().is_none_or(|&t| t <= c.tick_count()),
                "logged event in the future"
            );
        }
        // Pair up each machine's downs and ups: recovery tick == `until`.
        let mut pending: std::collections::HashMap<u32, u64> = Default::default();
        for ev in c.fault_log() {
            match *ev {
                FaultEvent::MachineDown { machine, until, .. } => {
                    prop_assert!(pending.insert(machine, until).is_none(),
                        "machine {machine} failed while already down");
                }
                FaultEvent::MachineUp { machine, tick } => {
                    prop_assert_eq!(pending.remove(&machine), Some(tick),
                        "recovery must land exactly at the scheduled `until`");
                }
                _ => {}
            }
        }
    }

    /// Lazy advance equals step-by-step ticking to exact f64 equality: an
    /// event-mode cluster advanced in one jump is bit-identical to the same
    /// cluster advanced one tick at a time — loads, fault log, counters.
    #[test]
    fn one_jump_equals_tick_by_tick_to_the_bit(
        seed in 0u64..10_000,
        n_machines in 1usize..32,
        span in 1u64..400,
        fail_prob_x1e4 in 0u64..100,
    ) {
        let fault = FaultConfig {
            machine_fail_prob: fail_prob_x1e4 as f64 / 1.0e4,
            machine_downtime_ticks: 13,
            ..FaultConfig::chaos(seed ^ 0x1a2)
        };
        let mut jump = cluster(seed, n_machines, EngineMode::EventDriven, Some(fault.clone()));
        let mut ticked = cluster(seed, n_machines, EngineMode::EventDriven, Some(fault));
        jump.advance(span);
        for _ in 0..span {
            ticked.step();
        }
        prop_assert_eq!(jump.tick_count(), ticked.tick_count());
        prop_assert_eq!(jump.fault_log(), ticked.fault_log());
        prop_assert_eq!(jump.down_count(), ticked.down_count());
        for m in 0..n_machines {
            prop_assert_eq!(jump.machine(m).load, ticked.machine(m).load);
        }
        prop_assert_eq!(jump.cluster_mean(), ticked.cluster_mean());
        prop_assert_eq!(jump.history_mean(), ticked.history_mean());
        // Both drained the same events; the jump did no extra work.
        prop_assert_eq!(jump.engine_stats().events, ticked.engine_stats().events);
    }
}

/// Determinism is thread-count independent: replaying the same scenario on
/// worker pools of 1, 2, and 8 threads yields byte-identical outcome
/// streams. (Each replay owns its executor — the engine shares no hidden
/// global state — so parallelism cannot reorder any RNG stream.)
#[test]
fn bit_identity_holds_on_1_2_and_8_threads() {
    let p = project(0x7ead);
    let opt = mcsim_optimizer::NativeOptimizer::new(&p.catalog);
    let plan = opt.optimize(
        &p.workload_for_day(0)[0],
        &mcsim_optimizer::Knobs::default(),
    );
    let scenario = ChaosScenario::new(0x7ead).fault_scale(2.0);
    let replay = |engine: EngineMode| {
        let mut exec = scenario.clone().engine(engine).build();
        (0..6)
            .map(|_| exec.try_execute(&plan, &p.catalog))
            .collect::<Vec<_>>()
    };
    let mut runs = Vec::new();
    for threads in [1usize, 2, 8] {
        let pool = mcsim_par::ThreadPool::new(threads);
        let both = pool.parallel_map(
            &[EngineMode::EventDriven, EngineMode::DenseTick],
            |&engine| replay(engine),
        );
        assert_eq!(
            both[0], both[1],
            "engines diverged on a {threads}-thread pool"
        );
        runs.push(both[0].clone());
    }
    assert_eq!(runs[0], runs[1], "1-thread vs 2-thread replay diverged");
    assert_eq!(runs[1], runs[2], "2-thread vs 8-thread replay diverged");
}
