//! Integration tests on the cluster/executor pair: allocation bias, the
//! phenomena the paper's inference strategies depend on, and environment
//! bookkeeping in logged records.

use mcsim_catalog::{EnvMetrics, ProjectId, ProjectProfile};
use mcsim_exec::{build_history, Cluster, ClusterConfig, Executor, Flighting, HistoryOptions};
use mcsim_optimizer::{Knobs, NativeOptimizer};

fn small_project() -> mcsim_catalog::Project {
    let mut prof = ProjectProfile::evaluation_project(1).unwrap();
    prof.n_tables = 18;
    prof.n_temp_tables = 2;
    prof.n_columns = 140;
    prof.n_templates = 10;
    prof.n_query_day0 = 15.0;
    prof.generate(ProjectId(1))
}

/// The bias behind Figure 10: because the allocator prefers idle machines,
/// the environment queries actually experience is *more idle* than the
/// cluster-wide average — which is why LOAM's mean-historical-stage-env
/// beats the cluster-wide variants.
#[test]
fn allocated_environments_are_more_idle_than_cluster_average() {
    let project = small_project();
    let repo = build_history(
        &project,
        &HistoryOptions {
            days: 3,
            max_queries: 40,
            seed: 77,
            ..HistoryOptions::default()
        },
    );
    let stage_mean = repo.mean_stage_env();

    // An identically-configured cluster's unconditional average.
    let mut cluster = Cluster::new(77, ClusterConfig::default());
    cluster.advance(2000);
    let cluster_mean = cluster.history_mean();

    assert!(
        stage_mean.cpu_idle > cluster_mean.cpu_idle - 0.05,
        "allocated idle {:.3} should not be far below cluster {:.3}",
        stage_mean.cpu_idle,
        cluster_mean.cpu_idle
    );
}

#[test]
fn execution_records_carry_env_per_stage() {
    let project = small_project();
    let repo = build_history(
        &project,
        &HistoryOptions {
            days: 2,
            max_queries: 20,
            seed: 5,
            ..HistoryOptions::default()
        },
    );
    for r in repo.records() {
        let stages = mcsim_plan::stage::decompose(&r.plan);
        assert_eq!(stages.len(), r.stage_envs.len());
        for env in &r.stage_envs {
            assert!((0.0..=1.0).contains(&env.cpu_idle));
            assert!(env.load5 >= 0.0);
        }
        assert!(r.latency > 0.0);
    }
}

#[test]
fn synchronized_rounds_share_environment_across_candidates() {
    let project = small_project();
    let optimizer = NativeOptimizer::new(&project.catalog);
    let q = &project.workload_for_day(0)[0];
    let a = optimizer.optimize(q, &Knobs::default());
    // Any second plan — reuse the same one to test exact-cost equality.
    let mut fl = Flighting::new(3, 0.25);
    let rows = fl.replay_synchronized(&[&a, &a, &a], &project.catalog, 6);
    for row in rows {
        assert_eq!(row[0], row[1]);
        assert_eq!(row[1], row[2]);
    }
}

#[test]
fn noise_free_executor_tracks_intrinsic_cost_times_multiplier() {
    let project = small_project();
    let optimizer = NativeOptimizer::new(&project.catalog);
    let q = &project.workload_for_day(0)[0];
    let plan = optimizer.optimize(q, &Knobs::default());
    let mut exec = Executor::new(9, Cluster::new(9, ClusterConfig::default()), 0.0);
    exec.cluster.advance(100);
    let out = exec.execute(&plan, &project.catalog);
    let intrinsic = exec.intrinsic_cost(&plan, &project.catalog);
    // With σ = 0 the cost must be intrinsic × (per-stage multipliers ≥ 1).
    assert!(
        out.cpu_cost >= intrinsic * 0.999,
        "{} vs {}",
        out.cpu_cost,
        intrinsic
    );
    assert!(out.cpu_cost <= intrinsic * 5.0);
}

#[test]
fn quiet_cluster_yields_multiplier_near_one() {
    let project = small_project();
    let optimizer = NativeOptimizer::new(&project.catalog);
    let q = &project.workload_for_day(0)[0];
    let plan = optimizer.optimize(q, &Knobs::default());
    let config = ClusterConfig {
        base_busy: 0.03,
        diurnal_amplitude: 0.0,
        ..ClusterConfig::default()
    };
    let mut exec = Executor::new(4, Cluster::new(4, config), 0.0);
    exec.cluster.advance(300);
    let out = exec.execute(&plan, &project.catalog);
    let intrinsic = exec.intrinsic_cost(&plan, &project.catalog);
    let mult = out.cpu_cost / intrinsic;
    assert!(
        mult < 2.2,
        "quiet-cluster multiplier should be small: {mult}"
    );
}

/// Section 3 of the paper: "end-to-end latency … is highly sensitive to
/// transient system conditions … and thus often noisy. Accordingly, LOAM
/// predicts CPU cost as a more stable proxy." The simulator reproduces that
/// relationship.
#[test]
fn latency_is_noisier_than_cpu_cost() {
    let project = small_project();
    let optimizer = NativeOptimizer::new(&project.catalog);
    let q = &project.workload_for_day(0)[0];
    let plan = optimizer.optimize(q, &Knobs::default());
    let mut fl = Flighting::new(21, 0.2);
    let outs = fl.replay(&plan, &project.catalog, 60);
    let rsd = |xs: &[f64]| {
        let m = xs.iter().sum::<f64>() / xs.len() as f64;
        (xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt() / m
    };
    let costs: Vec<f64> = outs.iter().map(|o| o.cpu_cost).collect();
    let lats: Vec<f64> = outs.iter().map(|o| o.latency).collect();
    assert!(
        rsd(&lats) > rsd(&costs),
        "latency RSD {:.3} should exceed CPU-cost RSD {:.3}",
        rsd(&lats),
        rsd(&costs)
    );
}

#[test]
fn env_metrics_mean_is_used_for_stage_windows() {
    // EnvMetrics::mean over a window equals manual averaging.
    let a = EnvMetrics::new(0.3, 0.02, 3.0, 0.4);
    let b = EnvMetrics::new(0.7, 0.08, 9.0, 0.8);
    let m = EnvMetrics::mean([&a, &b]);
    assert!((m.cpu_idle - 0.5).abs() < 1e-12);
    assert!((m.io_wait - 0.05).abs() < 1e-12);
    assert!((m.load5 - 6.0).abs() < 1e-12);
    assert!((m.mem_usage - 0.6).abs() < 1e-12);
}
