//! Property tests on the fault-injection layer: scenario replayability,
//! bit-identity of the disabled path, and the retry budget.

use mcsim_exec::{ChaosScenario, Cluster, ClusterConfig, Executor, FaultConfig, RetryPolicy};
use mcsim_obs::trace::TraceContext;
use mcsim_optimizer::{Knobs, NativeOptimizer};
use proptest::prelude::*;

fn project(seed: u64) -> mcsim_catalog::Project {
    let mut prof = mcsim_catalog::ProjectProfile::random(seed);
    prof.n_tables = prof.n_tables.clamp(8, 18);
    prof.n_temp_tables = prof.n_temp_tables.min(2);
    prof.n_columns = prof.n_columns.clamp(60, 140);
    prof.n_templates = prof.n_templates.clamp(4, 8);
    prof.generate(mcsim_catalog::ProjectId(1))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Same seed + same FaultConfig ⇒ identical execution outcomes AND an
    /// identical (byte-for-byte) fault log, query after query.
    #[test]
    fn same_seed_same_config_replays_identically(seed in 0u64..1000, scale_x10 in 5u64..40) {
        let p = project(seed);
        let opt = NativeOptimizer::new(&p.catalog);
        let plan = opt.optimize(&p.workload_for_day(0)[0], &Knobs::default());
        let scenario = ChaosScenario::new(seed ^ 0xc4a0)
            .fault_scale(scale_x10 as f64 / 10.0);
        let mut a = scenario.build();
        let mut b = scenario.build();
        for _ in 0..6 {
            let ra = a.try_execute(&plan, &p.catalog);
            let rb = b.try_execute(&plan, &p.catalog);
            prop_assert_eq!(ra, rb);
        }
        prop_assert_eq!(a.cluster.fault_log(), b.cluster.fault_log());
        prop_assert_eq!(a.cluster.tick_count(), b.cluster.tick_count());
    }

    /// Fault rate 0 ⇒ bit-identical costs to the fault-free path: arming the
    /// injector with all-zero probabilities draws nothing and changes
    /// nothing, down to the last bit of every cost and latency.
    #[test]
    fn zero_fault_rate_is_bit_identical_to_fault_free(seed in 0u64..1000) {
        let p = project(seed);
        let opt = NativeOptimizer::new(&p.catalog);
        let plan = opt.optimize(&p.workload_for_day(0)[0], &Knobs::default());

        let cluster = Cluster::new(seed, ClusterConfig::default());
        let mut plain = Executor::new(seed, cluster, 0.2);
        plain.cluster.advance(60);

        let mut armed_zero = plain.clone();
        armed_zero.cluster.set_fault_config(FaultConfig::chaos(seed).scaled(0.0));

        for _ in 0..4 {
            let a = plain.execute_with_noise_seed(&plan, &p.catalog, seed ^ 7);
            let b = armed_zero.execute_with_noise_seed(&plan, &p.catalog, seed ^ 7);
            prop_assert_eq!(a.cpu_cost.to_bits(), b.cpu_cost.to_bits());
            prop_assert_eq!(a.latency.to_bits(), b.latency.to_bits());
            prop_assert_eq!(&a.stage_costs, &b.stage_costs);
            prop_assert_eq!(a.retries, 0);
            prop_assert_eq!(a.wasted_cost, 0.0);
            prop_assert_eq!(a.speculative_launches, 0);
        }
        prop_assert!(armed_zero.cluster.fault_log().is_empty());
    }

    /// Retries never exceed the configured budget: per-query retries are
    /// bounded by `max_retries × stages`, and no traced attempt index ever
    /// exceeds `max_retries`.
    #[test]
    fn retries_never_exceed_budget(seed in 0u64..500, max_retries in 0u32..4) {
        let p = project(seed);
        let opt = NativeOptimizer::new(&p.catalog);
        let plan = opt.optimize(&p.workload_for_day(0)[0], &Knobs::default());
        let mut exec = ChaosScenario::new(seed)
            .fault(FaultConfig {
                stage_kill_prob: 0.35, // aggressive, to actually exercise the budget
                ..FaultConfig::chaos(seed)
            })
            .retry(RetryPolicy {
                max_retries,
                ..RetryPolicy::default()
            })
            .build();
        for _ in 0..5 {
            let ctx = TraceContext::new("budget");
            match exec.try_execute_traced(&plan, &p.catalog, Some(&ctx)) {
                Ok(out) => {
                    let stages = out.stage_costs.len() as u32;
                    prop_assert!(out.retries <= max_retries * stages,
                        "retries {} > budget {} x {} stages", out.retries, max_retries, stages);
                }
                Err(e) => {
                    prop_assert!(
                        matches!(e, mcsim_exec::ExecFailure::StageFailed { attempts, .. }
                            if attempts == max_retries + 1),
                        "failure must come exactly at budget exhaustion: {e}"
                    );
                }
            }
            for ev in ctx.timeline() {
                prop_assert!(ev.attempt <= max_retries,
                    "attempt {} exceeds budget {}", ev.attempt, max_retries);
            }
        }
    }
}
