//! Property tests: the parallel row-blocked matmul kernels are bit-identical
//! to the serial path at every thread count, including degenerate shapes
//! (empty matrices, single rows/columns).

use proptest::prelude::*;
use std::sync::Mutex;
use tinynn::Mat;

/// Global-knob guard: these tests mutate the process-wide thread count and
/// work gate, so they serialize on one lock and restore on drop.
static GLOBAL_LOCK: Mutex<()> = Mutex::new(());

struct KnobGuard {
    prev_threads: usize,
    prev_work: usize,
    _lock: std::sync::MutexGuard<'static, ()>,
}

impl KnobGuard {
    fn acquire() -> KnobGuard {
        let lock = GLOBAL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        KnobGuard {
            prev_threads: mcsim_par::threads(),
            prev_work: mcsim_par::min_parallel_work(),
            _lock: lock,
        }
    }
}

impl Drop for KnobGuard {
    fn drop(&mut self) {
        mcsim_par::set_threads(self.prev_threads);
        mcsim_par::set_min_parallel_work(self.prev_work);
    }
}

/// Deterministic pseudo-random matrix from a seed (splitmix64 bits mapped to
/// a modest range so products stay finite).
fn mat_from_seed(rows: usize, cols: usize, mut seed: u64) -> Mat {
    Mat::from_fn(rows, cols, |_, _| {
        seed = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
        let mut z = seed;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
        z ^= z >> 31;
        // Map to roughly [-4, 4).
        (z >> 40) as f32 / (1u64 << 21) as f32 - 4.0
    })
}

fn bits(m: &Mat) -> Vec<u32> {
    m.data.iter().map(|v| v.to_bits()).collect()
}

/// Computes all three products serially, then at 2 and 8 threads with the
/// work gate forced open, asserting exact bit equality each time.
fn assert_parallel_matches_serial(a: &Mat, b_nn: &Mat, b_tn: &Mat, b_nt: &Mat) {
    let _guard = KnobGuard::acquire();

    mcsim_par::set_threads(1);
    let serial = (a.matmul(b_nn), a.matmul_tn(b_tn), a.matmul_nt(b_nt));

    mcsim_par::set_min_parallel_work(1);
    for threads in [2usize, 8] {
        mcsim_par::set_threads(threads);
        let par = (a.matmul(b_nn), a.matmul_tn(b_tn), a.matmul_nt(b_nt));
        assert_eq!(bits(&serial.0), bits(&par.0), "matmul @ {threads} threads");
        assert_eq!(
            bits(&serial.1),
            bits(&par.1),
            "matmul_tn @ {threads} threads"
        );
        assert_eq!(
            bits(&serial.2),
            bits(&par.2),
            "matmul_nt @ {threads} threads"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn parallel_kernels_are_bit_identical(
        m in 0usize..40,
        k in 0usize..40,
        n in 0usize..40,
        seed in 0u64..1_000_000,
    ) {
        // A is m×k. matmul takes k×n, matmul_tn treats A as kᵀ (so its
        // operand is m×n computed from an m-row matrix), matmul_nt takes n×k.
        let a = mat_from_seed(m, k, seed);
        let b_nn = mat_from_seed(k, n, seed ^ 0xaaaa);
        let b_tn = mat_from_seed(m, n, seed ^ 0xbbbb);
        let b_nt = mat_from_seed(n, k, seed ^ 0xcccc);
        assert_parallel_matches_serial(&a, &b_nn, &b_tn, &b_nt);
    }
}

#[test]
fn empty_and_single_row_shapes() {
    for (m, k, n) in [
        (0, 0, 0),
        (0, 5, 3),
        (5, 0, 3),
        (5, 3, 0),
        (1, 7, 1),
        (1, 1, 64),
        (64, 1, 1),
        (1, 129, 9),
    ] {
        let a = mat_from_seed(m, k, 77);
        let b_nn = mat_from_seed(k, n, 78);
        let b_tn = mat_from_seed(m, n, 79);
        let b_nt = mat_from_seed(n, k, 80);
        assert_parallel_matches_serial(&a, &b_nn, &b_tn, &b_nt);
    }
}

#[test]
fn k_panel_boundaries_are_seamless() {
    // Shapes straddling the 64-wide k-panel: 63, 64, 65, 130.
    for k in [63usize, 64, 65, 130] {
        let a = mat_from_seed(5, k, k as u64);
        let b_nn = mat_from_seed(k, 6, 2);
        let b_tn = mat_from_seed(5, 6, 3);
        let b_nt = mat_from_seed(6, k, 4);
        assert_parallel_matches_serial(&a, &b_nn, &b_tn, &b_nt);
    }
}
