//! Compressed sparse row views of static feature matrices.
//!
//! Plan-feature rows are mostly zeros (one-hot operator slots plus hashed
//! table/column encodings leave ~90% of the feature width empty), and the
//! features of a cached plan never change across training epochs. Indexing
//! the nonzeros once lets the first tree-conv layer — the dominant share of
//! a training step's multiply-accumulates — iterate only the stored entries.
//!
//! ## Bit-identity with the dense kernels
//!
//! The sparse kernels are drop-in replacements for their dense counterparts,
//! not approximations: `sparse_dot` reproduces the dense `dot`'s exact
//! accumulation shape (four position-indexed lanes, `c % 4`, combined as
//! `((s0 + s1) + (s2 + s3)) + tail`), and the sparse weight-gradient kernels
//! accumulate per output element in the same ascending-`k` order as
//! `Mat::matmul_tn`. A skipped term is a product with a stored `+0.0`, which
//! under round-to-nearest leaves every partial sum bitwise unchanged
//! (`s + ±0.0 == s` for nonzero `s`, and `+0.0 + ±0.0 == +0.0`), so results
//! match the dense kernels bit for bit whenever every row carries at least
//! one nonzero — which plan-feature matrices always do (the operator one-hot
//! slot is 1.0 on every node). The only conceivable divergence is the sign
//! of an exactly-zero result of an all-zero row, which no consumer of these
//! kernels can observe through ReLU and nonzero-weight sums.

use crate::mat::Mat;

/// CSR-style index of the nonzero entries of a dense matrix. Column indices
/// within each row are ascending; `±0.0` entries are treated as zeros and
/// dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseRows {
    /// Row `i` occupies `cols[starts[i]..starts[i + 1]]` / `vals[...]`.
    starts: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f32>,
    rows: usize,
    dim: usize,
}

impl SparseRows {
    /// Indexes the nonzeros of `x` (rows × dim).
    pub fn from_dense(x: &Mat) -> SparseRows {
        let mut starts = Vec::with_capacity(x.rows + 1);
        let mut cols = Vec::new();
        let mut vals = Vec::new();
        starts.push(0);
        for r in 0..x.rows {
            for (c, &v) in x.row(r).iter().enumerate() {
                if v != 0.0 {
                    cols.push(c as u32);
                    vals.push(v);
                }
            }
            starts.push(cols.len() as u32);
        }
        SparseRows {
            starts,
            cols,
            vals,
            rows: x.rows,
            dim: x.cols,
        }
    }

    /// Number of rows in the underlying matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dense column count of the underlying matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The nonzeros of row `i` as parallel `(columns, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (a, b) = (self.starts[i] as usize, self.starts[i + 1] as usize);
        (&self.cols[a..b], &self.vals[a..b])
    }

    /// Reconstructs the dense matrix (tests and debugging).
    pub fn to_dense(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.dim);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out.data[r * self.dim + c as usize] = v;
            }
        }
        out
    }

    /// Heap bytes held by the index.
    pub fn bytes(&self) -> usize {
        self.starts.capacity() * std::mem::size_of::<u32>()
            + self.cols.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<f32>()
    }
}

/// Sparse · dense dot product, bitwise identical to `dot(x_dense, w)`: the
/// four-lane accumulation of the dense kernel is replicated by routing each
/// stored entry to the lane its column occupies there (`c % 4` within the
/// unrolled head, sequential tail for `c >= len - len % 4`).
#[inline]
pub(crate) fn sparse_dot(cols: &[u32], vals: &[f32], w: &[f32]) -> f32 {
    let main = w.len() - w.len() % 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut i = 0;
    while i < cols.len() {
        let c = cols[i] as usize;
        if c >= main {
            break;
        }
        let p = vals[i] * w[c];
        match c % 4 {
            0 => s0 += p,
            1 => s1 += p,
            2 => s2 += p,
            _ => s3 += p,
        }
        i += 1;
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (&c, &v) in cols[i..].iter().zip(&vals[i..]) {
        s += v * w[c as usize];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::dot;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A mostly-zero matrix shaped like plan features: every row has at
    /// least one nonzero (the "one-hot" slot) plus a few random entries.
    fn featurelike(rows: usize, dim: usize, rng: &mut StdRng) -> Mat {
        let mut x = Mat::zeros(rows, dim);
        for r in 0..rows {
            x.set(r, r % dim, 1.0);
            for _ in 0..dim / 8 {
                let c = rng.gen_range(0..dim);
                x.set(r, c, rng.gen_range(-2.0..2.0f32));
            }
        }
        x
    }

    #[test]
    fn from_dense_roundtrips() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = featurelike(7, 19, &mut rng);
        let s = SparseRows::from_dense(&x);
        assert_eq!((s.rows(), s.dim()), (7, 19));
        assert_eq!(s.to_dense(), x);
        assert!(s.nnz() < 7 * 19 / 2, "feature-like rows must stay sparse");
    }

    #[test]
    fn negative_zero_entries_are_dropped() {
        let x = Mat::from_vec(1, 4, vec![0.0, -0.0, 3.0, 0.0]);
        let s = SparseRows::from_dense(&x);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.row(0), (&[2u32][..], &[3.0f32][..]));
    }

    /// The lane-replicating sparse dot is bitwise identical to the dense
    /// four-lane dot across widths that exercise every head/tail split.
    #[test]
    fn sparse_dot_matches_dense_dot_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for dim in [1usize, 3, 4, 5, 8, 17, 64, 192] {
            for _ in 0..20 {
                let x = featurelike(1, dim, &mut rng);
                let w: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let s = SparseRows::from_dense(&x);
                let (cols, vals) = s.row(0);
                assert_eq!(
                    sparse_dot(cols, vals, &w).to_bits(),
                    dot(x.row(0), &w).to_bits(),
                    "dim {dim}"
                );
            }
        }
    }
}
