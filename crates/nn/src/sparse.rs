//! Compressed sparse row views of static feature matrices.
//!
//! Plan-feature rows are mostly zeros (one-hot operator slots plus hashed
//! table/column encodings leave ~90% of the feature width empty), and the
//! features of a cached plan never change across training epochs. Indexing
//! the nonzeros once lets the first tree-conv layer — the dominant share of
//! a training step's multiply-accumulates — iterate only the stored entries.
//!
//! ## Bit-identity with the dense kernels
//!
//! The sparse kernels are drop-in replacements for their dense counterparts,
//! not approximations: `sparse_dot` reproduces the dense `dot`'s exact
//! accumulation shape (four position-indexed lanes, `c % 4`, combined as
//! `((s0 + s1) + (s2 + s3)) + tail`), and the sparse weight-gradient kernels
//! accumulate per output element in the same ascending-`k` order as
//! `Mat::matmul_tn`. A skipped term is a product of a `±0.0` input with a
//! weight, i.e. some `±0.0`, and dropping it can never change an
//! accumulator's bits: a lane starts at `+0.0`; adding `±0.0` keeps it
//! `+0.0` exactly (`+0.0 + ±0.0 == +0.0` under round-to-nearest); two
//! nonzero addends can only cancel to `+0.0`, never `-0.0`; so a lane is
//! always either `+0.0` or nonzero, and in both states `s + ±0.0 == s`
//! bitwise. The argument needs nothing from the data — it holds for
//! plan-feature rows (which always carry the operator one-hot `1.0`) and
//! equally for post-ReLU activation rows, including all-zero ones, which is
//! what lets the inference path's second convolution skip the ≈half of `h1`
//! that ReLU zeroed.

use crate::mat::Mat;

/// CSR-style index of the nonzero entries of a dense matrix. Column indices
/// within each row are ascending; `±0.0` entries are treated as zeros and
/// dropped.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct SparseRows {
    /// Row `i` occupies `cols[starts[i]..starts[i + 1]]` / `vals[...]`.
    starts: Vec<u32>,
    cols: Vec<u32>,
    vals: Vec<f32>,
    rows: usize,
    dim: usize,
}

impl SparseRows {
    /// Indexes the nonzeros of `x` (rows × dim).
    pub fn from_dense(x: &Mat) -> SparseRows {
        let mut s = SparseRows::default();
        s.assign_from_dense(x);
        s
    }

    /// Re-indexes the nonzeros of `x` into this instance, reusing the
    /// existing buffers (no allocation once the largest batch shape has been
    /// seen). The result is identical to a fresh [`SparseRows::from_dense`];
    /// this is the inference hot path's way of rebuilding the conv1 CSR view
    /// of every scoring batch without touching the allocator.
    ///
    /// The scan is branchless: every element is stored at the write cursor
    /// unconditionally and the cursor advances only past nonzeros, so the
    /// sparsity pattern never feeds the branch predictor. On ~50%-dense
    /// inputs (post-ReLU activations, the worst case for a conditional
    /// `push`) this is roughly an order of magnitude faster than the
    /// branchy loop it replaces; the price is buffers sized to the dense
    /// element count rather than the nonzero count.
    pub fn assign_from_dense(&mut self, x: &Mat) {
        let total = x.rows * x.cols;
        self.starts.clear();
        self.starts.reserve(x.rows + 1);
        self.starts.push(0);
        self.cols.resize(total, 0);
        self.vals.resize(total, 0.0);
        let mut k = 0usize;
        for r in 0..x.rows {
            for (c, &v) in x.row(r).iter().enumerate() {
                self.cols[k] = c as u32;
                self.vals[k] = v;
                k += (v != 0.0) as usize;
            }
            self.starts.push(k as u32);
        }
        self.cols.truncate(k);
        self.vals.truncate(k);
        self.rows = x.rows;
        self.dim = x.cols;
    }

    /// Number of rows in the underlying matrix.
    pub fn rows(&self) -> usize {
        self.rows
    }

    /// Dense column count of the underlying matrix.
    pub fn dim(&self) -> usize {
        self.dim
    }

    /// Total stored nonzeros.
    pub fn nnz(&self) -> usize {
        self.cols.len()
    }

    /// The nonzeros of row `i` as parallel `(columns, values)` slices.
    #[inline]
    pub fn row(&self, i: usize) -> (&[u32], &[f32]) {
        let (a, b) = (self.starts[i] as usize, self.starts[i + 1] as usize);
        (&self.cols[a..b], &self.vals[a..b])
    }

    /// Reconstructs the dense matrix (tests and debugging).
    pub fn to_dense(&self) -> Mat {
        let mut out = Mat::zeros(self.rows, self.dim);
        for r in 0..self.rows {
            let (cols, vals) = self.row(r);
            for (&c, &v) in cols.iter().zip(vals) {
                out.data[r * self.dim + c as usize] = v;
            }
        }
        out
    }

    /// Heap bytes held by the index.
    pub fn bytes(&self) -> usize {
        self.starts.capacity() * std::mem::size_of::<u32>()
            + self.cols.capacity() * std::mem::size_of::<u32>()
            + self.vals.capacity() * std::mem::size_of::<f32>()
    }
}

/// Sparse · dense dot product, bitwise identical to `dot(x_dense, w)`: the
/// four-lane accumulation of the dense kernel is replicated by routing each
/// stored entry to the lane its column occupies there (`c % 4` within the
/// unrolled head, sequential tail for `c >= len - len % 4`).
#[inline]
pub(crate) fn sparse_dot(cols: &[u32], vals: &[f32], w: &[f32]) -> f32 {
    let main = w.len() - w.len() % 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    let mut i = 0;
    while i < cols.len() {
        let c = cols[i] as usize;
        if c >= main {
            break;
        }
        let p = vals[i] * w[c];
        match c % 4 {
            0 => s0 += p,
            1 => s1 += p,
            2 => s2 += p,
            _ => s3 += p,
        }
        i += 1;
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (&c, &v) in cols[i..].iter().zip(&vals[i..]) {
        s += v * w[c as usize];
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mat::dot;
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A mostly-zero matrix shaped like plan features: every row has at
    /// least one nonzero (the "one-hot" slot) plus a few random entries.
    fn featurelike(rows: usize, dim: usize, rng: &mut StdRng) -> Mat {
        let mut x = Mat::zeros(rows, dim);
        for r in 0..rows {
            x.set(r, r % dim, 1.0);
            for _ in 0..dim / 8 {
                let c = rng.gen_range(0..dim);
                x.set(r, c, rng.gen_range(-2.0..2.0f32));
            }
        }
        x
    }

    #[test]
    fn from_dense_roundtrips() {
        let mut rng = StdRng::seed_from_u64(3);
        let x = featurelike(7, 19, &mut rng);
        let s = SparseRows::from_dense(&x);
        assert_eq!((s.rows(), s.dim()), (7, 19));
        assert_eq!(s.to_dense(), x);
        assert!(s.nnz() < 7 * 19 / 2, "feature-like rows must stay sparse");
    }

    #[test]
    fn assign_from_dense_reuses_buffers_and_matches_fresh() {
        let mut rng = StdRng::seed_from_u64(5);
        let big = featurelike(9, 33, &mut rng);
        let mut s = SparseRows::from_dense(&big);
        let caps = (s.starts.capacity(), s.cols.capacity(), s.vals.capacity());
        // A smaller matrix must reuse the warmed buffers…
        let small = featurelike(4, 33, &mut rng);
        s.assign_from_dense(&small);
        assert_eq!(s, SparseRows::from_dense(&small));
        assert_eq!(
            (s.starts.capacity(), s.cols.capacity(), s.vals.capacity()),
            caps,
            "re-indexing a smaller matrix must not reallocate"
        );
        // …and going back to the big shape still matches a fresh build.
        s.assign_from_dense(&big);
        assert_eq!(s, SparseRows::from_dense(&big));
    }

    #[test]
    fn negative_zero_entries_are_dropped() {
        let x = Mat::from_vec(1, 4, vec![0.0, -0.0, 3.0, 0.0]);
        let s = SparseRows::from_dense(&x);
        assert_eq!(s.nnz(), 1);
        assert_eq!(s.row(0), (&[2u32][..], &[3.0f32][..]));
    }

    /// The lane-replicating sparse dot is bitwise identical to the dense
    /// four-lane dot across widths that exercise every head/tail split.
    #[test]
    fn sparse_dot_matches_dense_dot_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        for dim in [1usize, 3, 4, 5, 8, 17, 64, 192] {
            for _ in 0..20 {
                let x = featurelike(1, dim, &mut rng);
                let w: Vec<f32> = (0..dim).map(|_| rng.gen_range(-1.0..1.0)).collect();
                let s = SparseRows::from_dense(&x);
                let (cols, vals) = s.row(0);
                assert_eq!(
                    sparse_dot(cols, vals, &w).to_bits(),
                    dot(x.row(0), &w).to_bits(),
                    "dim {dim}"
                );
            }
        }
    }
}
