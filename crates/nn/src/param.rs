//! Learnable parameters with gradient accumulation and optimizer state.

use crate::mat::Mat;
use serde::{Deserialize, Serialize};

/// Hyperparameters of the Adam optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight decay applied to gradients.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// A learnable tensor: value + accumulated gradient + Adam moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Mat,
    /// Accumulated gradient (cleared by [`Param::zero_grad`]).
    pub grad: Mat,
    m: Mat,
    v: Mat,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Mat) -> Param {
        let (r, c) = (value.rows, value.cols);
        Param {
            value,
            grad: Mat::zeros(r, c),
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad.data {
            *g = 0.0;
        }
    }

    /// One Adam update. `t` is the 1-based global step (for bias
    /// correction).
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        let bc1 = 1.0 - cfg.beta1.powi(t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(t as i32);
        for i in 0..self.value.data.len() {
            let mut g = self.grad.data[i];
            if cfg.weight_decay > 0.0 {
                g += cfg.weight_decay * self.value.data[i];
            }
            self.m.data[i] = cfg.beta1 * self.m.data[i] + (1.0 - cfg.beta1) * g;
            self.v.data[i] = cfg.beta2 * self.v.data[i] + (1.0 - cfg.beta2) * g * g;
            let mh = self.m.data[i] / bc1;
            let vh = self.v.data[i] / bc2;
            self.value.data[i] -= lr * mh / (vh.sqrt() + cfg.eps);
        }
    }

    /// Plain SGD update.
    pub fn sgd_step(&mut self, lr: f32) {
        for i in 0..self.value.data.len() {
            self.value.data[i] -= lr * self.grad.data[i];
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.data.len()
    }

    /// True if the parameter tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.data.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize f(w) = (w - 3)^2 ; grad = 2(w - 3).
        let mut p = Param::new(Mat::from_vec(1, 1, vec![0.0]));
        let cfg = AdamConfig::default();
        for t in 1..=2000 {
            p.zero_grad();
            p.grad.data[0] = 2.0 * (p.value.data[0] - 3.0);
            p.adam_step(0.05, t, &cfg);
        }
        assert!((p.value.data[0] - 3.0).abs() < 1e-3, "{}", p.value.data[0]);
    }

    #[test]
    fn sgd_minimizes_a_quadratic() {
        let mut p = Param::new(Mat::from_vec(1, 1, vec![10.0]));
        for _ in 0..500 {
            p.zero_grad();
            p.grad.data[0] = 2.0 * (p.value.data[0] - 3.0);
            p.sgd_step(0.1);
        }
        assert!((p.value.data[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Mat::zeros(2, 2));
        p.grad.data[3] = 5.0;
        p.zero_grad();
        assert!(p.grad.data.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(Mat::from_vec(1, 1, vec![1.0]));
        let cfg = AdamConfig {
            weight_decay: 0.1,
            ..AdamConfig::default()
        };
        for t in 1..=200 {
            p.zero_grad(); // zero loss gradient; only decay acts
            p.adam_step(0.01, t, &cfg);
        }
        assert!(p.value.data[0] < 1.0);
    }
}
