//! Learnable parameters with gradient accumulation and optimizer state.

use crate::mat::Mat;
use serde::{Deserialize, Serialize};
use std::sync::atomic::{AtomicU64, Ordering};

/// Process-wide counter backing [`WeightsGen`]; starts at 1 so 0 can mean
/// "never prepared" in caches keyed by a stamp.
static NEXT_GEN: AtomicU64 = AtomicU64::new(1);

/// A globally unique stamp identifying one immutable weight state.
///
/// Layers that offer weight-derived caches (e.g. the transposed-weight
/// buffers of the inference convolution kernels) hold one of these in a
/// private field and draw a fresh value from a process-wide counter at
/// construction, at deserialization, and in every method that mutates or
/// hands out mutable access to the weights. Because every such transition
/// consumes a new counter value, two equal stamps can only come from clones
/// of the same unmutated state — i.e. equal stamps imply bit-identical
/// weights, which is the soundness argument for skipping cache rebuilds.
///
/// The stamp is identity, not data: clones keep it (they hold the same
/// values), equality ignores it, and serialization writes a placeholder
/// while deserialization always mints a fresh one.
#[derive(Debug)]
pub(crate) struct WeightsGen(u64);

impl WeightsGen {
    /// A stamp no other weight state has ever carried.
    pub(crate) fn fresh() -> WeightsGen {
        WeightsGen(NEXT_GEN.fetch_add(1, Ordering::Relaxed))
    }

    /// Marks the start of a new weight state (call *before* or *after* any
    /// mutation — only the transition matters).
    pub(crate) fn bump(&mut self) {
        self.0 = NEXT_GEN.fetch_add(1, Ordering::Relaxed);
    }

    /// The stamp value (never 0).
    pub(crate) fn value(&self) -> u64 {
        self.0
    }
}

impl Default for WeightsGen {
    fn default() -> WeightsGen {
        WeightsGen::fresh()
    }
}

impl Clone for WeightsGen {
    fn clone(&self) -> WeightsGen {
        WeightsGen(self.0)
    }
}

impl PartialEq for WeightsGen {
    fn eq(&self, _other: &WeightsGen) -> bool {
        true // identity stamp, not part of the semantic value
    }
}

impl Serialize for WeightsGen {
    fn to_value(&self) -> serde::Value {
        serde::Value::U64(0) // placeholder: stamps never round-trip
    }
}

impl Deserialize for WeightsGen {
    fn from_value(_: &serde::Value) -> Result<WeightsGen, serde::de::DeError> {
        Ok(WeightsGen::fresh())
    }
}

/// Hyperparameters of the Adam optimizer.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct AdamConfig {
    /// First-moment decay.
    pub beta1: f32,
    /// Second-moment decay.
    pub beta2: f32,
    /// Numerical-stability epsilon.
    pub eps: f32,
    /// L2 weight decay applied to gradients.
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        AdamConfig {
            beta1: 0.9,
            beta2: 0.999,
            eps: 1e-8,
            weight_decay: 0.0,
        }
    }
}

/// A learnable tensor: value + accumulated gradient + Adam moments.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Mat,
    /// Accumulated gradient (cleared by [`Param::zero_grad`]).
    pub grad: Mat,
    m: Mat,
    v: Mat,
}

impl Param {
    /// Wraps an initial value.
    pub fn new(value: Mat) -> Param {
        let (r, c) = (value.rows, value.cols);
        Param {
            value,
            grad: Mat::zeros(r, c),
            m: Mat::zeros(r, c),
            v: Mat::zeros(r, c),
        }
    }

    /// Clears the accumulated gradient.
    pub fn zero_grad(&mut self) {
        for g in &mut self.grad.data {
            *g = 0.0;
        }
    }

    /// One Adam update. `t` is the 1-based global step (for bias
    /// correction).
    ///
    /// Elementwise and therefore order-free: large tensors are updated in
    /// parallel chunks through the global pool with bit-identical results.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        let bc1 = 1.0 - cfg.beta1.powi(t as i32);
        let bc2 = 1.0 - cfg.beta2.powi(t as i32);
        let n = self.value.data.len();
        let pool = mcsim_par::ThreadPool::global();
        // ~12 flops per element.
        if pool.threads() > 1 && n > 1 && n * 12 >= mcsim_par::min_parallel_work() {
            // One job: (value, grad, m, v) chunks covering the same range.
            type AdamJob<'a> = (&'a mut [f32], &'a [f32], &'a mut [f32], &'a mut [f32]);
            let chunk = n.div_ceil(pool.threads() * 2).max(1);
            let jobs: Vec<AdamJob<'_>> = self
                .value
                .data
                .chunks_mut(chunk)
                .zip(self.grad.data.chunks(chunk))
                .zip(self.m.data.chunks_mut(chunk))
                .zip(self.v.data.chunks_mut(chunk))
                .map(|(((val, g), m), v)| (val, g, m, v))
                .collect();
            pool.for_each(jobs, |(val, g, m, v)| {
                adam_chunk(val, g, m, v, lr, bc1, bc2, cfg)
            });
        } else {
            adam_chunk(
                &mut self.value.data,
                &self.grad.data,
                &mut self.m.data,
                &mut self.v.data,
                lr,
                bc1,
                bc2,
                cfg,
            );
        }
    }

    /// Plain SGD update.
    pub fn sgd_step(&mut self, lr: f32) {
        for i in 0..self.value.data.len() {
            self.value.data[i] -= lr * self.grad.data[i];
        }
    }

    /// Number of scalar parameters.
    pub fn len(&self) -> usize {
        self.value.data.len()
    }

    /// True if the parameter tensor is empty.
    pub fn is_empty(&self) -> bool {
        self.value.data.is_empty()
    }
}

/// The Adam update for one aligned chunk of value/grad/moment arrays —
/// shared by the serial and parallel paths so they are bit-identical.
#[allow(clippy::too_many_arguments)]
fn adam_chunk(
    value: &mut [f32],
    grad: &[f32],
    m: &mut [f32],
    v: &mut [f32],
    lr: f32,
    bc1: f32,
    bc2: f32,
    cfg: &AdamConfig,
) {
    for i in 0..value.len() {
        let mut g = grad[i];
        if cfg.weight_decay > 0.0 {
            g += cfg.weight_decay * value[i];
        }
        m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * g;
        v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * g * g;
        let mh = m[i] / bc1;
        let vh = v[i] / bc2;
        value[i] -= lr * mh / (vh.sqrt() + cfg.eps);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_minimizes_a_quadratic() {
        // Minimize f(w) = (w - 3)^2 ; grad = 2(w - 3).
        let mut p = Param::new(Mat::from_vec(1, 1, vec![0.0]));
        let cfg = AdamConfig::default();
        for t in 1..=2000 {
            p.zero_grad();
            p.grad.data[0] = 2.0 * (p.value.data[0] - 3.0);
            p.adam_step(0.05, t, &cfg);
        }
        assert!((p.value.data[0] - 3.0).abs() < 1e-3, "{}", p.value.data[0]);
    }

    #[test]
    fn sgd_minimizes_a_quadratic() {
        let mut p = Param::new(Mat::from_vec(1, 1, vec![10.0]));
        for _ in 0..500 {
            p.zero_grad();
            p.grad.data[0] = 2.0 * (p.value.data[0] - 3.0);
            p.sgd_step(0.1);
        }
        assert!((p.value.data[0] - 3.0).abs() < 1e-3);
    }

    #[test]
    fn zero_grad_clears() {
        let mut p = Param::new(Mat::zeros(2, 2));
        p.grad.data[3] = 5.0;
        p.zero_grad();
        assert!(p.grad.data.iter().all(|&g| g == 0.0));
    }

    #[test]
    fn weight_decay_shrinks_weights() {
        let mut p = Param::new(Mat::from_vec(1, 1, vec![1.0]));
        let cfg = AdamConfig {
            weight_decay: 0.1,
            ..AdamConfig::default()
        };
        for t in 1..=200 {
            p.zero_grad(); // zero loss gradient; only decay acts
            p.adam_step(0.01, t, &cfg);
        }
        assert!(p.value.data[0] < 1.0);
    }
}
