//! Register-blocked tree-convolution kernels for [`KernelMode::Simd`].
//!
//! Two kernels, selected by the input representation:
//!
//! - **Dense, output-blocked** ([`conv_node_dense`]): computes four outputs
//!   of one node at a time, each with its own 4-lane accumulator held in a
//!   128-bit SSE2 register, so every 4-column load of the node's feature row
//!   is reused across four weight rows. On `x86_64`, SSE2 is part of the
//!   baseline ISA — no runtime feature detection; elsewhere the kernel falls
//!   back to the reference per-output dot loop.
//! - **Sparse** ([`conv_node_sparse`]): flips the loop nest of the CSR
//!   kernel. Instead of one branchy `sparse_dot` per output (od passes over
//!   the nonzero list), the stored nonzeros stream sequential multiply-adds
//!   against rows of the *transposed* weights. On `x86_64` this is the
//!   *register-strip* kernel: nonzeros are bucketed by position lane
//!   (`c % 4`, CSR order preserved) and each 32-float output strip holds
//!   all four lanes in eight SSE registers — one weight load per
//!   multiply-add, no scratch-row loads or stores, lane combine done
//!   register-to-register. Elsewhere it is the portable *lane-rows*
//!   fallback: four output-wide lane rows in scratch, one `axpy` per
//!   nonzero, auto-vectorized.
//!
//! ## Bit-identity
//!
//! Both kernels reproduce the reference semantics exactly — per output `j`:
//! four accumulator lanes indexed by column position (`c % 4`) over the
//! unrolled head `c < id - id % 4`, combined as `((s0+s1)+(s2+s3))`, tail
//! columns appended sequentially in ascending order, and the three weight
//! matrices accumulated in self → left → right order before bias and ReLU.
//!
//! For the SSE2 kernel the argument is direct: one `__m128` accumulator *is*
//! the four lanes (`_mm_add_ps`/`_mm_mul_ps` are lane-wise IEEE single
//! operations, identical to the scalar ones), and the blocked loop only
//! changes which outputs share an input load — never the per-output
//! operation sequence. Wider accumulators (8 lanes) or FMA would change the
//! reduction tree or the rounding and are deliberately not used.
//!
//! For the sparse kernels: lane `k` of output `j` receives exactly the
//! products `v·wᵀ[c][j]` of the stored nonzeros with `c % 4 == k`, in
//! ascending column order — the same additions `sparse_dot`'s lane `k`
//! performs for output `j`, because CSR columns are stored ascending and
//! bucketing by `c % 4` preserves that order within each lane. Whether the
//! lane accumulator lives in a scratch row (lane-rows) or an SSE register
//! lane (strip) changes nothing: both start at `+0.0` and receive the same
//! addition sequence. The lane combine and the sequential tail writes then
//! mirror the scalar epilogue element by element. Transposing the weights
//! is a pure data movement (no arithmetic), so feeding `wᵀ[c][j]` instead
//! of `w[j][c]` cannot perturb a single bit.
//!
//! [`KernelMode::Simd`]: crate::kernels::KernelMode::Simd

use crate::mat::{dot, Mat};

/// Transposed copies of one tree-conv layer's three weight matrices
/// (`id × od` each), kept in the caller's workspace so the sparse kernels
/// can stream weight *rows* per feature column. Rebuilt only when the
/// layer's weight-state stamp changes (see `WeightsGen` in the `param`
/// module) — at inference the weights are static, so after the first call
/// the transpose is pure reuse: zero copies, zero allocation. The rebuild
/// itself costs `3·id·od` strided copies.
#[derive(Debug, Clone, Default)]
pub(crate) struct ConvTransposes {
    /// Stamp of the weight state the buffers were built from (0 = never).
    key: u64,
    wst: Mat,
    wlt: Mat,
    wrt: Mat,
}

impl ConvTransposes {
    /// Fills the transposes from the layer's row-major weights, skipping
    /// the work entirely when `key` matches the last build (stamps are
    /// globally unique per weight state, so a match proves the sources are
    /// unchanged).
    pub(crate) fn prepare(&mut self, key: u64, ws: &Mat, wl: &Mat, wr: &Mat) {
        if self.key == key {
            debug_assert_eq!(
                (self.wst.rows, self.wst.cols),
                (ws.cols, ws.rows),
                "stamp matched but shapes differ"
            );
            return;
        }
        for (dst, src) in [
            (&mut self.wst, ws),
            (&mut self.wlt, wl),
            (&mut self.wrt, wr),
        ] {
            let (od, id) = (src.rows, src.cols);
            dst.resize_in_place(id, od);
            for c in 0..id {
                let drow = &mut dst.data[c * od..(c + 1) * od];
                for (j, d) in drow.iter_mut().enumerate() {
                    *d = src.data[j * id + c];
                }
            }
        }
        self.key = key;
    }

    /// The three transposed matrices as raw slices, self/left/right order.
    pub(crate) fn slices(&self) -> [&[f32]; 3] {
        [&self.wst.data, &self.wlt.data, &self.wrt.data]
    }

    /// Heap bytes held by the transpose buffers.
    pub(crate) fn bytes(&self) -> usize {
        (self.wst.data.capacity() + self.wlt.data.capacity() + self.wrt.data.capacity())
            * std::mem::size_of::<f32>()
    }
}

/// Per-thread scratch of the sparse convolution kernels: `5·od` of row
/// scratch (the portable lane-rows kernel uses four lane rows plus a combine
/// row; the register-strip kernel only the combine row) and the four
/// per-lane nonzero buckets of the strip kernel. Grows to the largest shape
/// seen and is then allocation-free.
pub(crate) struct SparseScratch {
    rows: Vec<f32>,
    buckets: [Vec<(u32, f32)>; 4],
}

thread_local! {
    /// One scratch per thread — the row-parallel dispatch means concurrent
    /// node blocks, each on its own pool thread.
    static SCRATCH: std::cell::RefCell<SparseScratch> = const {
        std::cell::RefCell::new(SparseScratch {
            rows: Vec::new(),
            buckets: [Vec::new(), Vec::new(), Vec::new(), Vec::new()],
        })
    };
}

/// Runs `f` with this thread's sparse-kernel scratch, row scratch sized to
/// `5 * od`.
pub(crate) fn with_sparse_scratch<R>(od: usize, f: impl FnOnce(&mut SparseScratch) -> R) -> R {
    SCRATCH.with(|l| {
        let mut s = l.borrow_mut();
        if s.rows.len() < 5 * od {
            s.rows.resize(5 * od, 0.0);
        }
        f(&mut s)
    })
}

/// One node of the dense fused convolution:
/// `out[j] = relu(dot(xi, ws_j) + dot(xl, wl_j) + dot(xr, wr_j) + bias[j])`,
/// output-blocked four at a time (see the module docs). `ws`/`wl`/`wr` are
/// the row-major `od × id` weights; `out` is the node's `od`-wide output row.
#[allow(clippy::too_many_arguments)]
pub(crate) fn conv_node_dense(
    xi: &[f32],
    xl: Option<&[f32]>,
    xr: Option<&[f32]>,
    ws: &[f32],
    wl: &[f32],
    wr: &[f32],
    bias: &[f32],
    id: usize,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: SSE2 is unconditionally available on x86_64.
        unsafe { conv_node_dense_sse2(xi, xl, xr, ws, wl, wr, bias, id, out) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        conv_node_dense_ref(xi, xl, xr, ws, wl, wr, bias, id, out)
    }
}

/// Reference per-output loop (also the tail for the blocked kernel): one
/// dispatched `dot` per output per present child.
#[allow(clippy::too_many_arguments, dead_code)]
fn conv_node_dense_ref(
    xi: &[f32],
    xl: Option<&[f32]>,
    xr: Option<&[f32]>,
    ws: &[f32],
    wl: &[f32],
    wr: &[f32],
    bias: &[f32],
    id: usize,
    out: &mut [f32],
) {
    for (j, (o, &bj)) in out.iter_mut().zip(bias).enumerate() {
        let mut s = dot(xi, &ws[j * id..(j + 1) * id]);
        if let Some(x) = xl {
            s += dot(x, &wl[j * id..(j + 1) * id]);
        }
        if let Some(x) = xr {
            s += dot(x, &wr[j * id..(j + 1) * id]);
        }
        *o = (s + bj).max(0.0);
    }
}

/// The SSE2 output-blocked kernel: four outputs per iteration, one 4-lane
/// accumulator register each, sharing every 4-column load of the input row.
/// Per-output accumulation order (lanes, lane combine, column tail, matrix
/// order) is exactly the reference's — see the module docs.
///
/// # Safety
///
/// Requires SSE2 (baseline on `x86_64`). All pointer arithmetic stays inside
/// the passed slices: `w*` hold `out.len() * id` elements and `x*` hold `id`.
#[cfg(target_arch = "x86_64")]
#[allow(clippy::too_many_arguments)]
unsafe fn conv_node_dense_sse2(
    xi: &[f32],
    xl: Option<&[f32]>,
    xr: Option<&[f32]>,
    ws: &[f32],
    wl: &[f32],
    wr: &[f32],
    bias: &[f32],
    id: usize,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let od = out.len();
    let main_j = od - od % 4;
    let main4 = id - id % 4;
    let mut j = 0;
    while j < main_j {
        // tot[k] accumulates output j+k across the three weight matrices in
        // self → left → right order, exactly like the reference's `s`.
        let mut tot = [0.0f32; 4];
        for (w, xo) in [(ws, Some(xi)), (wl, xl), (wr, xr)] {
            let Some(x) = xo else { continue };
            let mut a0 = _mm_setzero_ps();
            let mut a1 = _mm_setzero_ps();
            let mut a2 = _mm_setzero_ps();
            let mut a3 = _mm_setzero_ps();
            let w0 = w.as_ptr().add(j * id);
            let w1 = w.as_ptr().add((j + 1) * id);
            let w2 = w.as_ptr().add((j + 2) * id);
            let w3 = w.as_ptr().add((j + 3) * id);
            let mut c = 0;
            while c < main4 {
                let xv = _mm_loadu_ps(x.as_ptr().add(c));
                a0 = _mm_add_ps(a0, _mm_mul_ps(xv, _mm_loadu_ps(w0.add(c))));
                a1 = _mm_add_ps(a1, _mm_mul_ps(xv, _mm_loadu_ps(w1.add(c))));
                a2 = _mm_add_ps(a2, _mm_mul_ps(xv, _mm_loadu_ps(w2.add(c))));
                a3 = _mm_add_ps(a3, _mm_mul_ps(xv, _mm_loadu_ps(w3.add(c))));
                c += 4;
            }
            let accs = [a0, a1, a2, a3];
            let mut l = [0.0f32; 4];
            for (k, acc) in accs.into_iter().enumerate() {
                _mm_storeu_ps(l.as_mut_ptr(), acc);
                let mut s = (l[0] + l[1]) + (l[2] + l[3]);
                for cc in main4..id {
                    s += x[cc] * w[(j + k) * id + cc];
                }
                tot[k] += s;
            }
        }
        for k in 0..4 {
            out[j + k] = (tot[k] + bias[j + k]).max(0.0);
        }
        j += 4;
    }
    // od % 4 tail outputs: plain per-output dots (bit-identical by the dot
    // kernels' own guarantee).
    for j in main_j..od {
        let mut s = dot(xi, &ws[j * id..(j + 1) * id]);
        if let Some(x) = xl {
            s += dot(x, &wl[j * id..(j + 1) * id]);
        }
        if let Some(x) = xr {
            s += dot(x, &wr[j * id..(j + 1) * id]);
        }
        out[j] = (s + bias[j]).max(0.0);
    }
}

/// One node of the sparse fused convolution (see the module docs). `rows`
/// holds the node's and its children's CSR rows in self/left/right order
/// (`None` = missing child); `wts` are the matching transposed weights
/// (`id × od` row-major); `scratch` is this thread's kernel scratch; `out`
/// is the node's output row. Dispatches to the register-strip kernel on
/// `x86_64` and the portable lane-rows kernel elsewhere — bit-identical
/// either way.
pub(crate) fn conv_node_sparse(
    rows: [Option<(&[u32], &[f32])>; 3],
    wts: [&[f32]; 3],
    bias: &[f32],
    id: usize,
    od: usize,
    scratch: &mut SparseScratch,
    out: &mut [f32],
) {
    #[cfg(target_arch = "x86_64")]
    {
        // SAFETY: SSE2 is unconditionally available on x86_64.
        unsafe { conv_node_sparse_strips(rows, wts, bias, id, od, scratch, out) }
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        conv_node_sparse_lanes(rows, wts, bias, id, od, &mut scratch.rows, out)
    }
}

/// The register-strip sparse kernel: per weight matrix, the row's head
/// nonzeros are bucketed by lane (`c % 4`, CSR order preserved), then each
/// 32-float output strip accumulates every lane's nonzeros in eight 4-lane
/// SSE registers (zero-initialized — no lane-row fills) and the lane combine
/// happens register-to-register before one store per strip. One weight load
/// per multiply-add instead of the lane-row kernel's load/load/store
/// triple — the sparse path's throughput win on wide output rows. The
/// per-(lane, output) addition sequence is exactly the lane-rows kernel's,
/// so bits never change (see the module docs).
///
/// # Safety
///
/// Requires SSE2 (baseline on `x86_64`). Stored CSR columns are `< id` and
/// each `wts` slice holds `id * od` elements, so every weight access
/// `c * od + j` with `j < od` stays in bounds; `scratch.rows` holds at
/// least `5 * od` and `out` exactly `od`.
#[cfg(target_arch = "x86_64")]
unsafe fn conv_node_sparse_strips(
    rows: [Option<(&[u32], &[f32])>; 3],
    wts: [&[f32]; 3],
    bias: &[f32],
    id: usize,
    od: usize,
    scratch: &mut SparseScratch,
    out: &mut [f32],
) {
    use std::arch::x86_64::*;
    let main4 = id - id % 4;
    let mut first = true;
    for (wt, row) in wts.into_iter().zip(rows) {
        let Some((cols, vals)) = row else { continue };
        let tmp = &mut scratch.rows[4 * od..5 * od];
        let buckets = &mut scratch.buckets;
        for b in buckets.iter_mut() {
            b.clear();
        }
        let mut k = 0;
        while k < cols.len() && (cols[k] as usize) < main4 {
            let c = cols[k];
            buckets[(c % 4) as usize].push((c, vals[k]));
            k += 1;
        }
        let wp = wt.as_ptr();
        let mut j = 0;
        while j + 32 <= od {
            let tp = tmp.as_mut_ptr().add(j);
            let mut l = [[_mm_setzero_ps(); 8]; 4];
            for (lane, b) in l.iter_mut().zip(buckets.iter()) {
                for &(c, v) in b.iter() {
                    let w = wp.add(c as usize * od + j);
                    let vv = _mm_set1_ps(v);
                    for (s, acc) in lane.iter_mut().enumerate() {
                        *acc = _mm_add_ps(*acc, _mm_mul_ps(vv, _mm_loadu_ps(w.add(4 * s))));
                    }
                }
            }
            let [l0, l1, l2, l3] = l;
            for (s, ((a0, a1), (a2, a3))) in l0
                .into_iter()
                .zip(l1)
                .zip(l2.into_iter().zip(l3))
                .enumerate()
            {
                let c01 = _mm_add_ps(a0, a1);
                let c23 = _mm_add_ps(a2, a3);
                _mm_storeu_ps(tp.add(4 * s), _mm_add_ps(c01, c23));
            }
            j += 32;
        }
        // Sub-strip output tail: per-lane scalar accumulators per element —
        // the same per-(lane, j) add sequence, one element at a time.
        while j < od {
            let mut l = [0.0f32; 4];
            for (lk, b) in l.iter_mut().zip(buckets.iter()) {
                for &(c, v) in b.iter() {
                    *lk += v * *wp.add(c as usize * od + j);
                }
            }
            tmp[j] = (l[0] + l[1]) + (l[2] + l[3]);
            j += 1;
        }
        // Tail columns (`c >= main4`), ascending, one sequential add each —
        // the scalar kernel's tail order, replicated per output element.
        while k < cols.len() {
            let c = cols[k] as usize;
            let v = vals[k];
            let wrow = &wt[c * od..(c + 1) * od];
            for (t, &w) in tmp.iter_mut().zip(wrow) {
                *t += v * w;
            }
            k += 1;
        }
        if first {
            out.copy_from_slice(tmp);
            first = false;
        } else {
            for (o, &t) in out.iter_mut().zip(tmp.iter()) {
                *o += t;
            }
        }
    }
    for (o, &bj) in out.iter_mut().zip(bias) {
        *o = (*o + bj).max(0.0);
    }
}

/// The portable lane-rows sparse kernel (non-`x86_64` fallback): four
/// output-wide lane rows in scratch, one sequential axpy against a
/// transposed weight row per stored nonzero. `lanes` is `5 * od` scratch
/// (four lane rows + the combine row).
#[cfg(not(target_arch = "x86_64"))]
fn conv_node_sparse_lanes(
    rows: [Option<(&[u32], &[f32])>; 3],
    wts: [&[f32]; 3],
    bias: &[f32],
    id: usize,
    od: usize,
    lanes: &mut [f32],
    out: &mut [f32],
) {
    let main4 = id - id % 4;
    let mut first = true;
    for (wt, row) in wts.into_iter().zip(rows) {
        let Some((cols, vals)) = row else { continue };
        let (lane_rows, tmp) = lanes.split_at_mut(4 * od);
        lane_rows.fill(0.0);
        let mut k = 0;
        // Head: route each stored nonzero to its positional lane row.
        while k < cols.len() && (cols[k] as usize) < main4 {
            let c = cols[k] as usize;
            let v = vals[k];
            let lane = &mut lane_rows[(c % 4) * od..(c % 4 + 1) * od];
            let wrow = &wt[c * od..(c + 1) * od];
            for (l, &w) in lane.iter_mut().zip(wrow) {
                *l += v * w;
            }
            k += 1;
        }
        // Lane combine, elementwise across the output row.
        {
            let (l0, rest) = lane_rows.split_at(od);
            let (l1, rest) = rest.split_at(od);
            let (l2, l3) = rest.split_at(od);
            for (j, t) in tmp.iter_mut().enumerate() {
                *t = (l0[j] + l1[j]) + (l2[j] + l3[j]);
            }
        }
        // Tail columns, ascending, one sequential add each — the scalar
        // kernel's tail order, replicated per output element.
        while k < cols.len() {
            let c = cols[k] as usize;
            let v = vals[k];
            let wrow = &wt[c * od..(c + 1) * od];
            for (t, &w) in tmp.iter_mut().zip(wrow) {
                *t += v * w;
            }
            k += 1;
        }
        if first {
            out.copy_from_slice(&tmp[..od]);
            first = false;
        } else {
            for (o, &t) in out.iter_mut().zip(tmp.iter()) {
                *o += t;
            }
        }
    }
    for (o, &bj) in out.iter_mut().zip(bias) {
        *o = (*o + bj).max(0.0);
    }
}
