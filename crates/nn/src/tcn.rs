//! Tree Convolutional Networks over binary plan trees.
//!
//! "Tree convolution applies learnable filters over each tree node and its
//! children, aggregating information upward from child to parent. By
//! stacking more TCN layers, each node progressively integrates hierarchical
//! information from deeper subtrees. The resulting node representations are
//! pooled and then passed through a fully connected layer" (Section 4,
//! Predictive Module Design) — exactly the PlanEmb architecture of Bao/Neo.
//!
//! The workspace (`_ws`) entry points are the training hot path: the
//! per-node convolution is fused (self/left/right dot products + bias +
//! ReLU in one output pass, no gathered child matrices are materialized)
//! and every buffer is caller-provided, so a warm training step performs no
//! heap allocation. The legacy `forward`/`backward` pair delegates to the
//! same kernels.

use crate::convsimd::{self, ConvTransposes};
use crate::kernels::{kernel_mode, KernelMode};
use crate::linear::{relu_mask_into, Linear};
use crate::mat::{axpy, dot, run_row_blocked, Mat};
use crate::param::{AdamConfig, Param, WeightsGen};
use crate::sparse::{sparse_dot, SparseRows};
use crate::workspace::Workspace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Structural view of a binary tree: per-node left/right child indices.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TreeStructure {
    /// Left child of each node, if any.
    pub left: Vec<Option<usize>>,
    /// Right child of each node, if any.
    pub right: Vec<Option<usize>>,
}

impl TreeStructure {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }
}

/// One tree-convolution layer:
/// `h_i = relu(W_s x_i + W_l x_{left(i)} + W_r x_{right(i)} + b)`,
/// with missing children treated as zero vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeConvLayer {
    w_self: Param,
    w_left: Param,
    w_right: Param,
    b: Param,
    /// Weight-state stamp: minted fresh at construction/deserialization and
    /// re-minted by every method that mutates or exposes the weights, so
    /// the inference path can reuse weight-derived scratch (the transposed
    /// matrices of the lane-rows kernel) across calls. Equal stamps imply
    /// bit-identical weights; see [`WeightsGen`].
    gen: WeightsGen,
}

/// Cache for the backward pass of one layer.
#[derive(Debug, Clone)]
pub struct TreeConvCache {
    input: Mat,
    out: Mat,
}

impl TreeConvLayer {
    /// He-initialized layer mapping `in_dim` → `out_dim`.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let std = (2.0 / (3.0 * in_dim as f32)).sqrt();
        TreeConvLayer {
            w_self: Param::new(Mat::randn(out_dim, in_dim, std, rng)),
            w_left: Param::new(Mat::randn(out_dim, in_dim, std, rng)),
            w_right: Param::new(Mat::randn(out_dim, in_dim, std, rng)),
            b: Param::new(Mat::zeros(1, out_dim)),
            gen: WeightsGen::fresh(),
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w_self.value.rows
    }

    /// Forward over all nodes at once (`x`: nodes×in).
    ///
    /// Thin allocating wrapper over [`TreeConvLayer::forward_ws`].
    pub fn forward(&self, x: &Mat, tree: &TreeStructure) -> (Mat, TreeConvCache) {
        let mut out = Mat::default();
        self.forward_ws(x, tree, &mut out);
        (
            out.clone(),
            TreeConvCache {
                input: x.clone(),
                out,
            },
        )
    }

    /// Fused allocation-free forward: for each node, the self/left/right
    /// dot products, bias, and ReLU happen in one pass over the output row —
    /// no gathered child matrices are materialized. Missing children
    /// contribute nothing (a zero row's dot product). Row-parallel above the
    /// work gate with a fixed per-element accumulation order
    /// (self + left + right + bias), so results are bit-identical at any
    /// thread count. Under [`KernelMode::Simd`] each node runs through the
    /// output-blocked kernel of the `convsimd` module — bit-identical to the
    /// reference loop (the mode is sampled once per call, so one forward
    /// never mixes kernels across row blocks).
    pub fn forward_ws(&self, x: &Mat, tree: &TreeStructure, out: &mut Mat) {
        let n = x.rows;
        let id = x.cols;
        let od = self.out_dim();
        assert_eq!(id, self.w_self.value.cols, "tree conv input width");
        assert_eq!(n, tree.len(), "tree/feature row mismatch");
        out.resize_in_place(n, od);
        let (ws, wl, wr) = (&self.w_self.value, &self.w_left.value, &self.w_right.value);
        let bias = &self.b.value.data;
        let simd = kernel_mode() == KernelMode::Simd;
        let flops = 6 * n * id * od;
        run_row_blocked(out, flops, |i0, chunk| {
            for (bi, orow) in chunk.chunks_mut(od).enumerate() {
                let i = i0 + bi;
                let xi = x.row(i);
                let xl = tree.left[i].map(|j| x.row(j));
                let xr = tree.right[i].map(|j| x.row(j));
                if simd {
                    convsimd::conv_node_dense(
                        xi, xl, xr, &ws.data, &wl.data, &wr.data, bias, id, orow,
                    );
                    continue;
                }
                for (j, (o, &bj)) in orow.iter_mut().zip(bias).enumerate() {
                    let mut s = dot(xi, &ws.data[j * id..(j + 1) * id]);
                    if let Some(xl) = xl {
                        s += dot(xl, &wl.data[j * id..(j + 1) * id]);
                    }
                    if let Some(xr) = xr {
                        s += dot(xr, &wr.data[j * id..(j + 1) * id]);
                    }
                    *o = (s + bj).max(0.0);
                }
            }
        });
    }

    /// Fused forward over a sparse input view; bitwise identical to
    /// [`TreeConvLayer::forward_ws`] on the dense matrix (see the
    /// [`crate::sparse`] module docs for the argument). Feature rows are
    /// ~90% zeros, so this is the main single-thread win of the training
    /// hot path: only stored nonzeros are multiplied.
    pub fn forward_ws_sparse(&self, x: &SparseRows, tree: &TreeStructure, out: &mut Mat) {
        let n = x.rows();
        let id = x.dim();
        let od = self.out_dim();
        assert_eq!(id, self.w_self.value.cols, "tree conv input width");
        assert_eq!(n, tree.len(), "tree/feature row mismatch");
        out.resize_in_place(n, od);
        let (ws, wl, wr) = (&self.w_self.value, &self.w_left.value, &self.w_right.value);
        let bias = &self.b.value.data;
        let flops = 6 * x.nnz() * od;
        run_row_blocked(out, flops, |i0, chunk| {
            for (bi, orow) in chunk.chunks_mut(od).enumerate() {
                let i = i0 + bi;
                let xi = x.row(i);
                let xl = tree.left[i].map(|j| x.row(j));
                let xr = tree.right[i].map(|j| x.row(j));
                for (j, (o, &bj)) in orow.iter_mut().zip(bias).enumerate() {
                    let mut s = sparse_dot(xi.0, xi.1, &ws.data[j * id..(j + 1) * id]);
                    if let Some((cl, vl)) = xl {
                        s += sparse_dot(cl, vl, &wl.data[j * id..(j + 1) * id]);
                    }
                    if let Some((cr, vr)) = xr {
                        s += sparse_dot(cr, vr, &wr.data[j * id..(j + 1) * id]);
                    }
                    *o = (s + bj).max(0.0);
                }
            }
        });
    }

    /// [`TreeConvLayer::forward_ws_sparse`] through the lane-rows kernel of
    /// the `convsimd` module: instead of `od` branchy passes over each CSR
    /// row, every stored nonzero streams one sequential multiply-add row
    /// against the transposed weights (rebuilt in place into `wt` — zero
    /// allocation once warm). Bitwise identical to the scalar sparse kernel,
    /// and through it to the dense forward; see the `convsimd` module docs
    /// for the lane argument. The inference hot path's conv1 kernel.
    pub(crate) fn forward_ws_sparse_blocked(
        &self,
        x: &SparseRows,
        tree: &TreeStructure,
        wt: &mut ConvTransposes,
        out: &mut Mat,
    ) {
        let n = x.rows();
        let id = x.dim();
        let od = self.out_dim();
        assert_eq!(id, self.w_self.value.cols, "tree conv input width");
        assert_eq!(n, tree.len(), "tree/feature row mismatch");
        out.resize_in_place(n, od);
        wt.prepare(
            self.gen.value(),
            &self.w_self.value,
            &self.w_left.value,
            &self.w_right.value,
        );
        let wt = &*wt;
        let bias = &self.b.value.data;
        let flops = 6 * x.nnz() * od;
        run_row_blocked(out, flops, |i0, chunk| {
            convsimd::with_sparse_scratch(od, |scratch| {
                for (bi, orow) in chunk.chunks_mut(od).enumerate() {
                    let i = i0 + bi;
                    let rows = [
                        Some(x.row(i)),
                        tree.left[i].map(|j| x.row(j)),
                        tree.right[i].map(|j| x.row(j)),
                    ];
                    convsimd::conv_node_sparse(rows, wt.slices(), bias, id, od, scratch, orow);
                }
            });
        });
    }

    /// Backward: accumulates parameter grads, returns grad w.r.t. `x`.
    ///
    /// Thin allocating wrapper over [`TreeConvLayer::backward_ws`].
    pub fn backward(&mut self, cache: &TreeConvCache, tree: &TreeStructure, grad_out: &Mat) -> Mat {
        let mut grads: Vec<Mat> = self
            .grad_shapes()
            .iter()
            .map(|&(r, c)| Mat::zeros(r, c))
            .collect();
        let mut scratch = Workspace::new();
        let mut grad_x = Mat::default();
        self.backward_ws(
            &cache.input,
            &cache.out,
            tree,
            grad_out,
            &mut grads,
            Some(&mut grad_x),
            &mut scratch,
        );
        for (p, g) in self.params_mut().into_iter().zip(&grads) {
            p.grad.add_assign(g);
        }
        grad_x
    }

    /// Allocation-free backward. `h` is the forward output (its zeros mask
    /// the ReLU); per-parameter gradients go into zeroed scratch first and
    /// are then added to `grads` (layout per [`TreeConvLayer::grad_shapes`]),
    /// keeping one accumulation order for wrapper and workspace callers.
    /// Skipping `grad_in` skips the three input-gradient matmuls entirely —
    /// the first layer of an encoder never needs them.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_ws(
        &self,
        x: &Mat,
        h: &Mat,
        tree: &TreeStructure,
        grad_out: &Mat,
        grads: &mut [Mat],
        grad_in: Option<&mut Mat>,
        scratch: &mut Workspace,
    ) {
        assert_eq!(grads.len(), 4, "tree conv grad layout");
        let od = self.out_dim();
        let id = x.cols;
        scratch.with(grad_out.rows, grad_out.cols, |scratch, gpre| {
            relu_mask_into(h, grad_out, gpre);
            scratch.with(od, id, |scratch, dw| {
                gpre.matmul_tn_into(x, dw);
                grads[0].add_assign(dw);
                tn_gather_into(gpre, x, &tree.left, dw);
                grads[1].add_assign(dw);
                tn_gather_into(gpre, x, &tree.right, dw);
                grads[2].add_assign(dw);
                scratch.with(1, od, |_, db| {
                    gpre.col_sums_into(db);
                    grads[3].add_assign(db);
                });
            });
            if let Some(grad_x) = grad_in {
                // grad_x: self term + scattered child terms.
                gpre.matmul_into(&self.w_self.value, grad_x);
                scratch.with(gpre.rows, id, |_, via| {
                    gpre.matmul_into(&self.w_left.value, via);
                    scatter_add(grad_x, via, &tree.left);
                    gpre.matmul_into(&self.w_right.value, via);
                    scatter_add(grad_x, via, &tree.right);
                });
            }
        });
    }

    /// Allocation-free backward over a sparse input view; bitwise identical
    /// to [`TreeConvLayer::backward_ws`] with `grad_in: None` (the sparse
    /// path serves the encoder's first layer, whose input never needs a
    /// gradient). The weight-gradient kernels touch only stored nonzeros of
    /// `x` while keeping the dense kernels' per-element ascending-node
    /// accumulation order.
    pub fn backward_ws_sparse(
        &self,
        x: &SparseRows,
        h: &Mat,
        tree: &TreeStructure,
        grad_out: &Mat,
        grads: &mut [Mat],
        scratch: &mut Workspace,
    ) {
        assert_eq!(grads.len(), 4, "tree conv grad layout");
        let od = self.out_dim();
        let id = x.dim();
        scratch.with(grad_out.rows, grad_out.cols, |scratch, gpre| {
            relu_mask_into(h, grad_out, gpre);
            scratch.with(od, id, |scratch, dw| {
                tn_sparse_into(gpre, x, dw);
                grads[0].add_assign(dw);
                tn_gather_sparse_into(gpre, x, &tree.left, dw);
                grads[1].add_assign(dw);
                tn_gather_sparse_into(gpre, x, &tree.right, dw);
                grads[2].add_assign(dw);
                scratch.with(1, od, |_, db| {
                    gpre.col_sums_into(db);
                    grads[3].add_assign(db);
                });
            });
        });
    }

    /// Parameters in canonical order: `[w_self, w_left, w_right, b]`.
    pub fn params(&self) -> [&Param; 4] {
        [&self.w_self, &self.w_left, &self.w_right, &self.b]
    }

    /// Mutable parameter access in canonical order. Conservatively marks a
    /// new weight state (the caller may write through the borrows).
    pub fn params_mut(&mut self) -> [&mut Param; 4] {
        self.gen.bump();
        [
            &mut self.w_self,
            &mut self.w_left,
            &mut self.w_right,
            &mut self.b,
        ]
    }

    /// Gradient-buffer shapes in [`TreeConvLayer::params`] order.
    pub fn grad_shapes(&self) -> Vec<(usize, usize)> {
        self.params()
            .iter()
            .map(|p| (p.value.rows, p.value.cols))
            .collect()
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.w_self.zero_grad();
        self.w_left.zero_grad();
        self.w_right.zero_grad();
        self.b.zero_grad();
    }

    /// Adam step.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        self.gen.bump();
        self.w_self.adam_step(lr, t, cfg);
        self.w_left.adam_step(lr, t, cfg);
        self.w_right.adam_step(lr, t, cfg);
        self.b.adam_step(lr, t, cfg);
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.w_self.len() + self.w_left.len() + self.w_right.len() + self.b.len()
    }
}

/// `out = gpreᵀ @ gather(x, idx)` without materializing the gather: the
/// weight gradient of one child filter. Accumulation per output element is
/// ascending node order, the same k-outer order as [`Mat::matmul_tn`];
/// nodes without the child are skipped (a zero row contributes nothing).
fn tn_gather_into(gpre: &Mat, x: &Mat, idx: &[Option<usize>], out: &mut Mat) {
    out.resize_in_place(gpre.cols, x.cols);
    out.fill(0.0);
    for (k, &j) in idx.iter().enumerate() {
        let Some(j) = j else { continue };
        let xrow = &x.data[j * x.cols..(j + 1) * x.cols];
        let grow = gpre.row(k);
        for (r, &g) in grow.iter().enumerate() {
            axpy(out.row_mut(r), g, xrow);
        }
    }
}

/// `out = gpreᵀ @ x` over the sparse view: per output element the
/// accumulation is ascending node order with one add per node, the same
/// order as [`Mat::matmul_tn`] — nodes where `x` stores no value for a
/// column are skipped (their dense product is an exact zero).
fn tn_sparse_into(gpre: &Mat, x: &SparseRows, out: &mut Mat) {
    out.resize_in_place(gpre.cols, x.dim());
    out.fill(0.0);
    let id = x.dim();
    for k in 0..x.rows() {
        let (cols, vals) = x.row(k);
        let grow = gpre.row(k);
        for (r, &g) in grow.iter().enumerate() {
            let orow = &mut out.data[r * id..(r + 1) * id];
            for (&c, &v) in cols.iter().zip(vals) {
                orow[c as usize] += g * v;
            }
        }
    }
}

/// Sparse analog of [`tn_gather_into`]: the child-filter weight gradient
/// without materializing the gather, iterating only stored nonzeros.
fn tn_gather_sparse_into(gpre: &Mat, x: &SparseRows, idx: &[Option<usize>], out: &mut Mat) {
    out.resize_in_place(gpre.cols, x.dim());
    out.fill(0.0);
    let id = x.dim();
    for (k, &j) in idx.iter().enumerate() {
        let Some(j) = j else { continue };
        let (cols, vals) = x.row(j);
        let grow = gpre.row(k);
        for (r, &g) in grow.iter().enumerate() {
            let orow = &mut out.data[r * id..(r + 1) * id];
            for (&c, &v) in cols.iter().zip(vals) {
                orow[c as usize] += g * v;
            }
        }
    }
}

/// `target[idx[i]] += src[i]` for present children.
fn scatter_add(target: &mut Mat, src: &Mat, idx: &[Option<usize>]) {
    for (i, &j) in idx.iter().enumerate() {
        if let Some(j) = j {
            let cols = target.cols;
            for c in 0..cols {
                target.data[j * cols + c] += src.data[i * cols + c];
            }
        }
    }
}

/// Dynamic pooling over node representations: concatenated max and mean
/// pools plus a log node count. Max pooling captures dominant operators;
/// mean pooling (≈ sum / n) matches the additive structure of plan cost.
fn pool_into(h: &Mat, pooled: &mut Mat, arg: &mut Vec<usize>) {
    pooled.resize_in_place(1, 2 * h.cols + 1);
    pool_rows_into(h, 0, h.rows, &mut pooled.data, arg);
}

/// Pools the node rows `r0..r1` of `h` into `out` (one `2d+1`-wide pooled
/// row). Shared by the single-tree [`pool_into`] and the forest forward, so
/// a tree pooled as a forest segment is bit-identical to pooling it alone:
/// the per-column scan order (ascending row) and the division by the segment
/// length are the same. `arg` records the absolute argmax rows.
fn pool_rows_into(h: &Mat, r0: usize, r1: usize, out: &mut [f32], arg: &mut Vec<usize>) {
    let d = h.cols;
    debug_assert_eq!(out.len(), 2 * d + 1, "pooled row width");
    let n = r1 - r0;
    arg.clear();
    arg.resize(d, 0);
    for (c, arg_c) in arg.iter_mut().enumerate() {
        let mut best = f32::MIN;
        let mut sum = 0.0;
        for r in r0..r1 {
            let v = h.get(r, c);
            sum += v;
            if v > best {
                best = v;
                *arg_c = r;
            }
        }
        out[c] = best;
        out[d + c] = sum / n.max(1) as f32;
    }
    out[2 * d] = (1.0 + n as f32).ln();
}

/// The full PlanEmb tree-convolutional encoder: two tree-conv layers,
/// dynamic max pooling, and a fully connected projection to the embedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcn {
    conv1: TreeConvLayer,
    conv2: TreeConvLayer,
    proj: Linear,
}

/// Reusable per-model activation buffers for the workspace forward/backward
/// pair.
#[derive(Debug, Clone, Default)]
pub struct TcnWs {
    h1: Mat,
    h2: Mat,
    pooled: Mat,
    argmax: Vec<usize>,
    emb: Mat,
}

impl TcnWs {
    /// The embedding produced by the last `forward_ws` call.
    pub fn emb(&self) -> &Mat {
        &self.emb
    }

    /// Bytes held by the activation buffers.
    pub fn bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        (self.h1.data.capacity()
            + self.h2.data.capacity()
            + self.pooled.data.capacity()
            + self.emb.data.capacity())
            * f
            + self.argmax.capacity() * std::mem::size_of::<usize>()
    }
}

/// Backward cache for one encoded tree.
#[derive(Debug, Clone)]
pub struct TcnCache {
    x: Mat,
    ws: TcnWs,
}

/// Reusable buffers for [`Tcn::forward_forest_ws`]: the stacked node matrix
/// and offset tree structure of the whole batch, the shared convolution
/// activations, and the per-tree pooled/embedding rows. One warm instance
/// per serving worker; never reallocates once the largest batch shape has
/// been seen.
#[derive(Debug, Clone, Default)]
pub struct ForestWs {
    x: Mat,
    tree: TreeStructure,
    /// Prefix node offsets: tree `b` owns rows `bounds[b]..bounds[b+1]`.
    bounds: Vec<usize>,
    /// CSR view of `x`, rebuilt in place by the sparse forward.
    sx: SparseRows,
    /// CSR view of the post-ReLU `h1` (≈half exact zeros), rebuilt in place
    /// by the SIMD-mode sparse forward so conv2 can skip them too.
    sh1: SparseRows,
    /// Transposed conv1 weights for the SIMD-mode sparse kernel, rebuilt in
    /// place per forward.
    wt: ConvTransposes,
    /// Transposed conv2 weights, same role as `wt`.
    wt2: ConvTransposes,
    h1: Mat,
    h2: Mat,
    pooled: Mat,
    argmax: Vec<usize>,
    emb: Mat,
}

impl ForestWs {
    /// The batch embeddings of the last forward: one row per tree, in input
    /// order.
    pub fn emb(&self) -> &Mat {
        &self.emb
    }

    /// Mutable access to the stacked input: the batch node matrix, the
    /// offset tree structure, and the prefix bounds. For callers that build
    /// the batch directly instead of stacking per-tree matrices — e.g. a
    /// batched featurizer writing every plan's rows contiguously in place —
    /// after which [`Tcn::forward_forest_stacked_ws`] consumes exactly these
    /// three buffers. The stacking contract: `x` holds all trees' node rows
    /// back to back, `tree` holds child indices offset into the stack, and
    /// `bounds` holds `ntrees + 1` prefix offsets starting at 0 and ending
    /// at `x.rows`.
    pub fn stacked_parts_mut(&mut self) -> (&mut Mat, &mut TreeStructure, &mut Vec<usize>) {
        (&mut self.x, &mut self.tree, &mut self.bounds)
    }

    /// Stacks `n` trees (produced by `item`, called twice per index: once to
    /// size the batch, once to fill it) into the workspace's batch buffers
    /// per the [`ForestWs::stacked_parts_mut`] contract. Closure-based so
    /// callers holding trees behind `Arc`s or caches can stack without first
    /// materializing a slice of references.
    pub fn stack_with<'a>(
        &mut self,
        n: usize,
        item: impl Fn(usize) -> (&'a Mat, &'a TreeStructure),
    ) {
        self.tree.left.clear();
        self.tree.right.clear();
        self.bounds.clear();
        self.bounds.push(0);
        if n == 0 {
            self.x.resize_in_place(0, self.x.cols.max(1));
            return;
        }
        let in_dim = item(0).0.cols;
        let total: usize = (0..n).map(|i| item(i).0.rows).sum();
        self.x.resize_in_place(total, in_dim);
        let mut off = 0;
        for i in 0..n {
            let (xi, ti) = item(i);
            assert_eq!(xi.rows, ti.len(), "tree/feature row mismatch");
            assert_eq!(xi.cols, in_dim, "inconsistent feature widths in a batch");
            self.x.data[off * in_dim..(off + xi.rows) * in_dim].copy_from_slice(&xi.data);
            self.tree
                .left
                .extend(ti.left.iter().map(|c| c.map(|j| j + off)));
            self.tree
                .right
                .extend(ti.right.iter().map(|c| c.map(|j| j + off)));
            off += xi.rows;
            self.bounds.push(off);
        }
    }

    /// Bytes held by the batch buffers.
    pub fn bytes(&self) -> usize {
        let f = std::mem::size_of::<f32>();
        let u = std::mem::size_of::<usize>();
        (self.x.data.capacity()
            + self.h1.data.capacity()
            + self.h2.data.capacity()
            + self.pooled.data.capacity()
            + self.emb.data.capacity())
            * f
            + self.sx.bytes()
            + self.sh1.bytes()
            + self.wt.bytes()
            + self.wt2.bytes()
            + (self.bounds.capacity() + self.argmax.capacity()) * u
            + (self.tree.left.capacity() + self.tree.right.capacity())
                * std::mem::size_of::<Option<usize>>()
    }
}

impl Tcn {
    /// Builds an encoder `in_dim → hidden1 → hidden2 → emb_dim`.
    pub fn new<R: Rng>(
        in_dim: usize,
        hidden1: usize,
        hidden2: usize,
        emb_dim: usize,
        rng: &mut R,
    ) -> Tcn {
        Tcn {
            conv1: TreeConvLayer::new(in_dim, hidden1, rng),
            conv2: TreeConvLayer::new(hidden1, hidden2, rng),
            proj: Linear::new(2 * hidden2 + 1, emb_dim, rng),
        }
    }

    /// Embedding width.
    pub fn emb_dim(&self) -> usize {
        self.proj.out_dim()
    }

    /// Encodes one tree (`x`: nodes×in) into a 1×emb embedding.
    ///
    /// Thin allocating wrapper over [`Tcn::forward_ws`].
    pub fn forward(&self, x: &Mat, tree: &TreeStructure) -> (Mat, TcnCache) {
        let mut ws = TcnWs::default();
        self.forward_ws(x, tree, &mut ws);
        let emb = ws.emb.clone();
        (emb, TcnCache { x: x.clone(), ws })
    }

    /// Allocation-free encoding into the workspace's reusable buffers; the
    /// embedding lands in `ws.emb()`.
    pub fn forward_ws(&self, x: &Mat, tree: &TreeStructure, ws: &mut TcnWs) {
        let TcnWs {
            h1,
            h2,
            pooled,
            argmax,
            emb,
        } = ws;
        self.conv1.forward_ws(x, tree, h1);
        self.conv2.forward_ws(h1, tree, h2);
        pool_into(h2, pooled, argmax);
        self.proj.forward_into(pooled, emb);
    }

    /// Allocation-free encoding from a sparse feature view: conv1 consumes
    /// the CSR index directly (bitwise identical to [`Tcn::forward_ws`] on
    /// the dense matrix), and the dense downstream layers are unchanged.
    pub fn forward_ws_sparse(&self, x: &SparseRows, tree: &TreeStructure, ws: &mut TcnWs) {
        let TcnWs {
            h1,
            h2,
            pooled,
            argmax,
            emb,
        } = ws;
        self.conv1.forward_ws_sparse(x, tree, h1);
        self.conv2.forward_ws(h1, tree, h2);
        pool_into(h2, pooled, argmax);
        self.proj.forward_into(pooled, emb);
    }

    /// Inference-only encoding.
    pub fn infer(&self, x: &Mat, tree: &TreeStructure) -> Mat {
        let mut ws = TcnWs::default();
        self.forward_ws(x, tree, &mut ws);
        ws.emb
    }

    /// Batched ("forest") encoding: stacks every tree's node features into
    /// one padded node matrix with offset child indices, so both convolution
    /// layers run as a single fused kernel invocation over all nodes of the
    /// batch, then pools each tree's row segment and projects the whole
    /// pooled batch through one matmul. The embeddings land in `ws.emb()`,
    /// one row per input tree, in input order.
    ///
    /// Bit-identical to encoding each tree alone with [`Tcn::infer`]: the
    /// convolution is row-local (a node sees only itself and its own
    /// children, whose indices are offset within the same tree), pooling
    /// shares the per-segment kernel with the single-tree path, and the
    /// projection computes each output row as an independent dot product.
    pub fn forward_forest_ws(&self, items: &[(&Mat, &TreeStructure)], ws: &mut ForestWs) {
        ws.stack_with(items.len(), |i| items[i]);
        self.forward_forest_stacked_ws(ws, false);
    }

    /// [`Tcn::forward_forest_ws`] with conv1 consuming a CSR index of the
    /// stacked feature matrix instead of the dense rows — bitwise identical
    /// (see the [`crate::sparse`] module docs), and the main single-thread
    /// win of the inference hot path: plan-feature rows are ~90% zeros.
    pub fn forward_forest_ws_sparse(&self, items: &[(&Mat, &TreeStructure)], ws: &mut ForestWs) {
        ws.stack_with(items.len(), |i| items[i]);
        self.forward_forest_stacked_ws(ws, true);
    }

    /// The compute half of the forest forward: consumes a batch already
    /// stacked into `ws` (via [`ForestWs::stack_with`] or written directly
    /// through [`ForestWs::stacked_parts_mut`]) and leaves the embeddings in
    /// `ws.emb()`. When `sparse`, conv1 runs over a CSR index of the stacked
    /// matrix, rebuilt in place — under [`KernelMode::Simd`] through the
    /// lane-rows kernel, otherwise through the scalar CSR kernel; the result
    /// is bitwise identical every way.
    pub fn forward_forest_stacked_ws(&self, ws: &mut ForestWs, sparse: bool) {
        let ForestWs {
            x,
            tree,
            bounds,
            sx,
            sh1,
            wt,
            wt2,
            h1,
            h2,
            pooled,
            argmax,
            emb,
        } = ws;
        let ntrees = bounds.len().saturating_sub(1);
        if ntrees == 0 {
            emb.resize_in_place(0, self.emb_dim());
            return;
        }
        debug_assert_eq!(bounds[0], 0, "bounds must start at 0");
        debug_assert_eq!(bounds[ntrees], x.rows, "bounds must end at x.rows");
        if sparse && kernel_mode() == KernelMode::Simd {
            // conv1 through the sparse node kernel over the feature
            // nonzeros. conv2's input is the post-ReLU `h1` (skipping its
            // exact zeros is bit-exact too — see the `crate::sparse` module
            // docs), but whether that pays depends on how much ReLU actually
            // zeroed: the sparse kernel beats the dense output-blocked
            // kernel only below ~60% density, so the choice is gated on the
            // measured nonzero count. Either way the bits are identical —
            // the gate is a pure performance decision.
            sx.assign_from_dense(x);
            self.conv1.forward_ws_sparse_blocked(sx, tree, wt, h1);
            sh1.assign_from_dense(h1);
            if sh1.nnz() * 5 <= h1.rows * h1.cols * 3 {
                self.conv2.forward_ws_sparse_blocked(sh1, tree, wt2, h2);
            } else {
                self.conv2.forward_ws(h1, tree, h2);
            }
        } else if sparse {
            sx.assign_from_dense(x);
            self.conv1.forward_ws_sparse(sx, tree, h1);
            self.conv2.forward_ws(h1, tree, h2);
        } else {
            self.conv1.forward_ws(x, tree, h1);
            self.conv2.forward_ws(h1, tree, h2);
        }
        let d = h2.cols;
        pooled.resize_in_place(ntrees, 2 * d + 1);
        for b in 0..ntrees {
            let row = &mut pooled.data[b * (2 * d + 1)..(b + 1) * (2 * d + 1)];
            pool_rows_into(h2, bounds[b], bounds[b + 1], row, argmax);
        }
        self.proj.forward_into(pooled, emb);
    }

    /// Backward from an embedding gradient; accumulates parameter grads.
    ///
    /// Thin allocating wrapper over the workspace kernels that preserves the
    /// legacy engine's full cost profile: it also computes conv1's input
    /// gradient (into discarded scratch), exactly as the original
    /// per-layer `backward` chain did — three matmuls plus two scatters per
    /// tree that the `_ws` training path skips.
    pub fn backward(&mut self, cache: &TcnCache, tree: &TreeStructure, grad_emb: &Mat) {
        let mut grads: Vec<Mat> = self
            .grad_shapes()
            .iter()
            .map(|&(r, c)| Mat::zeros(r, c))
            .collect();
        let mut scratch = Workspace::new();
        let (x, ws) = (&cache.x, &cache.ws);
        self.backward_ws_with(
            tree,
            ws,
            grad_emb,
            &mut grads,
            &mut scratch,
            |conv1, grad_h1, g1, scratch| {
                scratch.with(x.rows, x.cols, |scratch, gx| {
                    conv1.backward_ws(x, &ws.h1, tree, grad_h1, g1, Some(gx), scratch);
                });
            },
        );
        self.add_grads(&grads);
    }

    /// Allocation-free backward: parameter gradients are added into `grads`
    /// (layout per [`Tcn::grad_shapes`]). The first conv layer's input
    /// gradient is never computed — the encoder input needs no gradient, and
    /// the legacy path wasted three matmuls plus two scatters per tree on it.
    pub fn backward_ws(
        &self,
        x: &Mat,
        tree: &TreeStructure,
        ws: &TcnWs,
        grad_emb: &Mat,
        grads: &mut [Mat],
        scratch: &mut Workspace,
    ) {
        self.backward_ws_with(
            tree,
            ws,
            grad_emb,
            grads,
            scratch,
            |conv1, grad_h1, g1, scratch| {
                conv1.backward_ws(x, &ws.h1, tree, grad_h1, g1, None, scratch);
            },
        );
    }

    /// Sparse-input backward: conv1's weight gradients are accumulated from
    /// the CSR view (bitwise identical to the dense path); everything
    /// downstream is shared with [`Tcn::backward_ws`].
    pub fn backward_ws_sparse(
        &self,
        x: &SparseRows,
        tree: &TreeStructure,
        ws: &TcnWs,
        grad_emb: &Mat,
        grads: &mut [Mat],
        scratch: &mut Workspace,
    ) {
        self.backward_ws_with(
            tree,
            ws,
            grad_emb,
            grads,
            scratch,
            |conv1, grad_h1, g1, scratch| {
                conv1.backward_ws_sparse(x, &ws.h1, tree, grad_h1, g1, scratch);
            },
        );
    }

    /// Shared backward skeleton: proj → un-pool → conv2, then hands conv1's
    /// upstream gradient to the caller-chosen first-layer kernel.
    fn backward_ws_with(
        &self,
        tree: &TreeStructure,
        ws: &TcnWs,
        grad_emb: &Mat,
        grads: &mut [Mat],
        scratch: &mut Workspace,
        conv1_back: impl FnOnce(&TreeConvLayer, &Mat, &mut [Mat], &mut Workspace),
    ) {
        assert_eq!(grads.len(), 10, "tcn grad layout");
        let (g1, rest) = grads.split_at_mut(4);
        let (g2, gp) = rest.split_at_mut(4);
        let (gpw, gpb) = {
            let (a, b) = gp.split_at_mut(1);
            (&mut a[0], &mut b[0])
        };
        scratch.with(1, ws.pooled.cols, |scratch, grad_pooled| {
            Linear::backward_into(
                &self.proj.w.value,
                &ws.pooled,
                grad_emb,
                gpw,
                gpb,
                Some(grad_pooled),
                scratch,
            );
            // Un-pool: max gradients route to argmax rows, mean gradients
            // spread over all rows. The node-count term has no input
            // gradient.
            let d = ws.h2.cols;
            let n = ws.h2.rows.max(1) as f32;
            scratch.with_zeroed(ws.h2.rows, ws.h2.cols, |scratch, grad_h2| {
                for c in 0..d {
                    let r = ws.argmax[c];
                    grad_h2.data[r * d + c] += grad_pooled.data[c];
                    let gm = grad_pooled.data[d + c] / n;
                    for row in 0..ws.h2.rows {
                        grad_h2.data[row * d + c] += gm;
                    }
                }
                scratch.with(ws.h1.rows, ws.h1.cols, |scratch, grad_h1| {
                    self.conv2.backward_ws(
                        &ws.h1,
                        &ws.h2,
                        tree,
                        grad_h2,
                        g2,
                        Some(grad_h1),
                        scratch,
                    );
                    conv1_back(&self.conv1, grad_h1, g1, scratch);
                });
            });
        });
    }

    /// Parameters in canonical order: conv1's four, conv2's four, then the
    /// projection's weight and bias.
    pub fn params(&self) -> Vec<&Param> {
        let mut out: Vec<&Param> = Vec::with_capacity(10);
        out.extend(self.conv1.params());
        out.extend(self.conv2.params());
        out.push(&self.proj.w);
        out.push(&self.proj.b);
        out
    }

    /// Mutable parameter access in [`Tcn::params`] order.
    pub fn params_mut(&mut self) -> Vec<&mut Param> {
        let mut out: Vec<&mut Param> = Vec::with_capacity(10);
        out.extend(self.conv1.params_mut());
        out.extend(self.conv2.params_mut());
        out.push(&mut self.proj.w);
        out.push(&mut self.proj.b);
        out
    }

    /// Gradient-buffer shapes in [`Tcn::params`] order.
    pub fn grad_shapes(&self) -> Vec<(usize, usize)> {
        self.params()
            .iter()
            .map(|p| (p.value.rows, p.value.cols))
            .collect()
    }

    /// Adds externally accumulated gradients (in [`Tcn::params`] order) into
    /// the parameters' gradient accumulators.
    pub fn add_grads(&mut self, mats: &[Mat]) {
        let params = self.params_mut();
        assert_eq!(mats.len(), params.len(), "tcn grad layout");
        for (p, g) in params.into_iter().zip(mats) {
            p.grad.add_assign(g);
        }
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        self.conv1.zero_grad();
        self.conv2.zero_grad();
        self.proj.zero_grad();
    }

    /// Adam step on all parameters.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        self.conv1.adam_step(lr, t, cfg);
        self.conv2.adam_step(lr, t, cfg);
        self.proj.adam_step(lr, t, cfg);
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.conv1.param_count() + self.conv2.param_count() + self.proj.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A three-node tree: root(0) with children 1 (left) and 2 (right).
    fn tiny_tree() -> TreeStructure {
        TreeStructure {
            left: vec![Some(1), None, None],
            right: vec![Some(2), None, None],
        }
    }

    #[test]
    fn forward_shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let tcn = Tcn::new(6, 8, 4, 3, &mut rng);
        let x = Mat::randn(3, 6, 1.0, &mut rng);
        let (emb, _) = tcn.forward(&x, &tiny_tree());
        assert_eq!((emb.rows, emb.cols), (1, 3));
    }

    /// The batched forest forward must be bit-identical to encoding every
    /// tree alone — the guarantee the serving layer's request batching
    /// stands on. Mixed shapes (chains, the three-node tree, a single leaf)
    /// exercise the segment offsets.
    #[test]
    fn forest_forward_matches_single_tree_inference_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let tcn = Tcn::new(5, 8, 6, 4, &mut rng);
        let chain = |n: usize| TreeStructure {
            left: (0..n)
                .map(|i| if i + 1 < n { Some(i + 1) } else { None })
                .collect(),
            right: vec![None; n],
        };
        let trees = [tiny_tree(), chain(5), chain(1), tiny_tree(), chain(7)];
        let xs: Vec<Mat> = trees
            .iter()
            .map(|t| Mat::randn(t.len(), 5, 1.0, &mut rng))
            .collect();
        let items: Vec<(&Mat, &TreeStructure)> = xs.iter().zip(trees.iter()).collect();

        let mut ws = ForestWs::default();
        tcn.forward_forest_ws(&items, &mut ws);
        assert_eq!((ws.emb().rows, ws.emb().cols), (items.len(), 4));
        for (b, (x, t)) in items.iter().enumerate() {
            let single = tcn.infer(x, t);
            assert_eq!(
                ws.emb().row(b),
                &single.data[..],
                "forest row {b} must be bit-identical to the single-tree path"
            );
        }
        // Warm reuse with a different batch size stays correct.
        tcn.forward_forest_ws(&items[..2], &mut ws);
        assert_eq!(ws.emb().rows, 2);
        assert_eq!(ws.emb().row(1), &tcn.infer(&xs[1], &trees[1]).data[..]);
        // An empty batch yields an empty embedding matrix.
        tcn.forward_forest_ws(&[], &mut ws);
        assert_eq!(ws.emb().rows, 0);
    }

    /// The sparse-conv1 forest forward and the direct-stacked entry point
    /// must both be bit-identical to the dense item-slice path.
    #[test]
    fn sparse_and_prestacked_forest_paths_match_dense_bitwise() {
        let mut rng = StdRng::seed_from_u64(17);
        let tcn = Tcn::new(24, 8, 6, 4, &mut rng);
        let chain = |n: usize| TreeStructure {
            left: (0..n)
                .map(|i| if i + 1 < n { Some(i + 1) } else { None })
                .collect(),
            right: vec![None; n],
        };
        let trees = [tiny_tree(), chain(4), chain(1), chain(6)];
        // Feature-like rows: a guaranteed one-hot slot plus a few nonzeros.
        let xs: Vec<Mat> = trees
            .iter()
            .map(|t| {
                let mut x = Mat::zeros(t.len(), 24);
                for r in 0..t.len() {
                    x.set(r, r % 24, 1.0);
                    for k in 0..3 {
                        x.set(r, (r * 5 + k * 7) % 24, rng.gen_range(-1.5..1.5f32));
                    }
                }
                x
            })
            .collect();
        let items: Vec<(&Mat, &TreeStructure)> = xs.iter().zip(trees.iter()).collect();

        let mut ws_d = ForestWs::default();
        tcn.forward_forest_ws(&items, &mut ws_d);
        let mut ws_s = ForestWs::default();
        tcn.forward_forest_ws_sparse(&items, &mut ws_s);
        assert_eq!(ws_d.emb(), ws_s.emb(), "sparse forest forward diverged");

        // Stacking through the closure API + the prestacked entry point is
        // the cached serving path; it must match too (both modes).
        for sparse in [false, true] {
            let mut ws_p = ForestWs::default();
            ws_p.stack_with(items.len(), |i| items[i]);
            tcn.forward_forest_stacked_ws(&mut ws_p, sparse);
            assert_eq!(ws_d.emb(), ws_p.emb(), "prestacked (sparse={sparse})");
        }

        // Empty prestacked batch.
        let mut ws_e = ForestWs::default();
        ws_e.stack_with(0, |_| unreachable!());
        tcn.forward_forest_stacked_ws(&mut ws_e, true);
        assert_eq!(ws_e.emb().rows, 0);
    }

    /// The SIMD-mode convolution kernels (output-blocked dense, lane-rows
    /// sparse) must be bit-identical to the scalar reference kernels on the
    /// same inputs — single-tree and stacked-forest paths alike. Dimensions
    /// are chosen to exercise every tail: `id % 4 != 0` (column tails),
    /// `od % 4 != 0` (output-block tails), and rows with nonzeros in the
    /// final tail columns (the sparse kernel's sequential epilogue).
    #[test]
    fn simd_conv_kernels_match_scalar_bitwise() {
        let _guard = crate::kernels::MODE_TEST_MUTEX
            .lock()
            .unwrap_or_else(|e| e.into_inner());
        use crate::kernels::{set_kernel_mode, KernelMode};
        let mut rng = StdRng::seed_from_u64(33);
        let tcn = Tcn::new(30, 10, 6, 4, &mut rng);
        let chain = |n: usize| TreeStructure {
            left: (0..n)
                .map(|i| if i + 1 < n { Some(i + 1) } else { None })
                .collect(),
            right: vec![None; n],
        };
        let trees = [tiny_tree(), chain(5), chain(1), chain(8)];
        let xs: Vec<Mat> = trees
            .iter()
            .map(|t| {
                let mut x = Mat::zeros(t.len(), 30);
                for r in 0..t.len() {
                    x.set(r, r % 26, 1.0);
                    for k in 0..4 {
                        x.set(r, (r * 5 + k * 7) % 26, rng.gen_range(-1.5..1.5f32));
                    }
                    // Tail columns (28, 29) land past `id - id % 4` = 28.
                    x.set(r, 28 + r % 2, rng.gen_range(-1.5..1.5f32));
                }
                x
            })
            .collect();
        let items: Vec<(&Mat, &TreeStructure)> = xs.iter().zip(trees.iter()).collect();

        let prev = set_kernel_mode(KernelMode::Scalar);
        let mut ws_scalar = ForestWs::default();
        tcn.forward_forest_ws(&items, &mut ws_scalar);
        let mut ws_scalar_sp = ForestWs::default();
        tcn.forward_forest_ws_sparse(&items, &mut ws_scalar_sp);
        let singles: Vec<Mat> = items.iter().map(|(x, t)| tcn.infer(x, t)).collect();

        set_kernel_mode(KernelMode::Simd);
        let mut ws_simd = ForestWs::default();
        tcn.forward_forest_ws(&items, &mut ws_simd);
        let mut ws_simd_sp = ForestWs::default();
        tcn.forward_forest_ws_sparse(&items, &mut ws_simd_sp);
        assert_eq!(
            ws_scalar.emb(),
            ws_simd.emb(),
            "dense blocked kernel diverged from scalar"
        );
        assert_eq!(
            ws_scalar_sp.emb(),
            ws_simd_sp.emb(),
            "sparse lane-rows kernel diverged from scalar"
        );
        assert_eq!(ws_scalar.emb(), ws_scalar_sp.emb(), "sparse vs dense");
        for (b, single) in singles.iter().enumerate() {
            assert_eq!(
                tcn.infer(items[b].0, items[b].1),
                *single,
                "single-tree SIMD forward diverged from scalar (tree {b})"
            );
        }
        set_kernel_mode(prev);
    }

    #[test]
    fn children_influence_parent_representation() {
        let mut rng = StdRng::seed_from_u64(1);
        let tcn = Tcn::new(4, 8, 4, 2, &mut rng);
        let tree = tiny_tree();
        let x1 = Mat::randn(3, 4, 1.0, &mut rng);
        let mut x2 = x1.clone();
        // Change only the left child's features.
        for c in 0..4 {
            x2.set(1, c, x2.get(1, c) + 2.0);
        }
        let e1 = tcn.infer(&x1, &tree);
        let e2 = tcn.infer(&x2, &tree);
        assert!(e1 != e2, "child features must flow into the embedding");
    }

    #[test]
    fn gradient_check_through_the_whole_encoder() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tcn = Tcn::new(4, 6, 5, 2, &mut rng);
        let tree = tiny_tree();
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let target = Mat::randn(1, 2, 1.0, &mut rng);

        let (emb, cache) = tcn.forward(&x, &tree);
        let (_, grad) = mse(&emb, &target);
        tcn.zero_grad();
        tcn.backward(&cache, &tree, &grad);

        let loss_of = |tcn: &Tcn| {
            let e = tcn.infer(&x, &tree);
            mse(&e, &target).0
        };
        let eps = 1e-2;
        // Check a few first-layer weights (hardest path: conv1 → conv2 →
        // pool → proj).
        for idx in [0usize, 3, 10] {
            let mut tp = tcn.clone();
            tp.conv1.w_left.value.data[idx] += eps;
            let mut tm = tcn.clone();
            tm.conv1.w_left.value.data[idx] -= eps;
            let num = (loss_of(&tp) - loss_of(&tm)) / (2.0 * eps);
            let ana = tcn.conv1.w_left.grad.data[idx];
            assert!(
                (num - ana).abs() < 5e-2,
                "conv1.w_left[{idx}] num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn workspace_path_matches_wrapper_bitwise() {
        let mut rng = StdRng::seed_from_u64(8);
        let mut tcn = Tcn::new(5, 7, 6, 3, &mut rng);
        let tree = TreeStructure {
            left: vec![Some(1), Some(3), None, None, None],
            right: vec![Some(2), Some(4), None, None, None],
        };
        let x = Mat::randn(5, 5, 1.0, &mut rng);
        let g = Mat::randn(1, 3, 1.0, &mut rng);

        let (emb_wrap, cache) = tcn.forward(&x, &tree);
        tcn.zero_grad();
        tcn.backward(&cache, &tree, &g);
        let wrap_grads: Vec<Mat> = tcn.params().iter().map(|p| p.grad.clone()).collect();

        let mut ws = TcnWs::default();
        tcn.forward_ws(&x, &tree, &mut ws);
        assert_eq!(*ws.emb(), emb_wrap);
        let mut grads: Vec<Mat> = tcn
            .grad_shapes()
            .iter()
            .map(|&(r, c)| Mat::zeros(r, c))
            .collect();
        let mut scratch = Workspace::new();
        tcn.backward_ws(&x, &tree, &ws, &g, &mut grads, &mut scratch);
        for (got, want) in grads.iter().zip(&wrap_grads) {
            assert_eq!(got, want);
        }
    }

    #[test]
    fn sparse_path_matches_dense_path_bitwise() {
        // Feature-like sparse input (every node row keeps a one-hot slot,
        // most other entries zero): forward embeddings AND all ten parameter
        // gradients must be bit-identical between the dense and sparse
        // kernels.
        let mut rng = StdRng::seed_from_u64(21);
        let tcn = Tcn::new(24, 9, 7, 3, &mut rng);
        let tree = TreeStructure {
            left: vec![Some(1), Some(3), None, None, Some(4)],
            right: vec![Some(2), None, Some(4), None, None],
        };
        let mut x = Mat::zeros(5, 24);
        for r in 0..5 {
            x.set(r, r % 24, 1.0);
            for k in 0..4 {
                x.set(r, (r * 7 + k * 5) % 24, rng.gen_range(-1.5..1.5f32));
            }
        }
        let g = Mat::randn(1, 3, 1.0, &mut rng);

        let mut ws_d = TcnWs::default();
        tcn.forward_ws(&x, &tree, &mut ws_d);
        let sx = SparseRows::from_dense(&x);
        let mut ws_s = TcnWs::default();
        tcn.forward_ws_sparse(&sx, &tree, &mut ws_s);
        assert_eq!(ws_d.emb(), ws_s.emb(), "sparse forward diverged");
        assert_eq!(ws_d.h1, ws_s.h1, "sparse conv1 activations diverged");

        let shapes = tcn.grad_shapes();
        let zeroed = || -> Vec<Mat> { shapes.iter().map(|&(r, c)| Mat::zeros(r, c)).collect() };
        let mut scratch = Workspace::new();
        let mut gd = zeroed();
        tcn.backward_ws(&x, &tree, &ws_d, &g, &mut gd, &mut scratch);
        let mut gs = zeroed();
        tcn.backward_ws_sparse(&sx, &tree, &ws_s, &g, &mut gs, &mut scratch);
        for (i, (d, s)) in gd.iter().zip(&gs).enumerate() {
            let (db, sb): (Vec<u32>, Vec<u32>) = (
                d.data.iter().map(|v| v.to_bits()).collect(),
                s.data.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(db, sb, "grad {i} diverged between dense and sparse");
        }
    }

    #[test]
    fn tree_conv_input_gradient_check() {
        // The conv input gradient feeds conv1 during stacked backward; check
        // it against finite differences through a single layer.
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = TreeConvLayer::new(4, 3, &mut rng);
        let tree = tiny_tree();
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let target = Mat::randn(3, 3, 1.0, &mut rng);
        let (h, cache) = layer.forward(&x, &tree);
        let (_, grad) = mse(&h, &target);
        layer.zero_grad();
        let gx = layer.backward(&cache, &tree, &grad);

        let loss_of = |x: &Mat| {
            let (h, _) = layer.forward(x, &tree);
            mse(&h, &target).0
        };
        let eps = 1e-2;
        for idx in [0usize, 5, 9] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss_of(&xp) - loss_of(&xm)) / (2.0 * eps);
            assert!(
                (num - gx.data[idx]).abs() < 5e-2,
                "dX[{idx}] num {num} vs {}",
                gx.data[idx]
            );
        }
    }

    #[test]
    fn tcn_learns_to_count_join_like_nodes() {
        // Trees whose label is the number of nodes with feature[0] = 1.
        let mut rng = StdRng::seed_from_u64(5);
        let mut tcn = Tcn::new(3, 16, 8, 4, &mut rng);
        let mut head = Linear::new(4, 1, &mut rng);
        let cfg = AdamConfig::default();

        let make_tree = |rng: &mut StdRng| {
            // Left-deep chain of 4..7 nodes.
            let n = rng.gen_range(4..8usize);
            let mut left = vec![None; n];
            let mut right = vec![None; n];
            for i in 0..n - 1 {
                left[i] = Some(i + 1);
                if i + 2 < n && rng.gen_bool(0.3) {
                    right[i] = Some(i + 2);
                }
            }
            // Ensure it is a tree (right children must not duplicate).
            let mut seen = std::collections::HashSet::new();
            for slot in right.iter_mut() {
                if let Some(r) = *slot {
                    if !seen.insert(r) || left.contains(&Some(r)) {
                        *slot = None;
                    }
                }
            }
            let mut x = Mat::zeros(n, 3);
            let mut count = 0.0;
            for i in 0..n {
                if rng.gen_bool(0.5) {
                    x.set(i, 0, 1.0);
                    count += 1.0;
                }
                x.set(i, 1, rng.gen_range(-1.0..1.0));
                x.set(i, 2, 1.0);
            }
            (x, TreeStructure { left, right }, count)
        };

        let mut t = 0;
        for _ in 0..400 {
            tcn.zero_grad();
            head.zero_grad();
            let mut loss_sum = 0.0;
            for _ in 0..8 {
                let (x, tree, label) = make_tree(&mut rng);
                let (emb, cache) = tcn.forward(&x, &tree);
                let pred = head.forward(&emb);
                let (l, g) = mse(&pred, &Mat::from_vec(1, 1, vec![label]));
                loss_sum += l;
                let gemb = head.backward(&emb, &g);
                tcn.backward(&cache, &tree, &gemb);
            }
            let _ = loss_sum;
            t += 1;
            tcn.adam_step(0.005, t, &cfg);
            head.adam_step(0.005, t, &cfg);
        }

        // Evaluate.
        let mut err = 0.0;
        for _ in 0..50 {
            let (x, tree, label) = make_tree(&mut rng);
            let pred = head.forward(&tcn.infer(&x, &tree)).data[0];
            err += (pred - label).abs();
        }
        err /= 50.0;
        assert!(
            err < 1.0,
            "mean abs error {err} should beat trivial baseline"
        );
    }
}
