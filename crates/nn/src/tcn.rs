//! Tree Convolutional Networks over binary plan trees.
//!
//! "Tree convolution applies learnable filters over each tree node and its
//! children, aggregating information upward from child to parent. By
//! stacking more TCN layers, each node progressively integrates hierarchical
//! information from deeper subtrees. The resulting node representations are
//! pooled and then passed through a fully connected layer" (Section 4,
//! Predictive Module Design) — exactly the PlanEmb architecture of Bao/Neo.

use crate::linear::{relu, relu_backward, Linear};
use crate::mat::Mat;
use crate::param::{AdamConfig, Param};
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Structural view of a binary tree: per-node left/right child indices.
#[derive(Debug, Clone, PartialEq, Eq, Default, Serialize, Deserialize)]
pub struct TreeStructure {
    /// Left child of each node, if any.
    pub left: Vec<Option<usize>>,
    /// Right child of each node, if any.
    pub right: Vec<Option<usize>>,
}

impl TreeStructure {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.left.len()
    }

    /// True if the tree has no nodes.
    pub fn is_empty(&self) -> bool {
        self.left.is_empty()
    }
}

/// One tree-convolution layer:
/// `h_i = relu(W_s x_i + W_l x_{left(i)} + W_r x_{right(i)} + b)`,
/// with missing children treated as zero vectors.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct TreeConvLayer {
    w_self: Param,
    w_left: Param,
    w_right: Param,
    b: Param,
}

/// Cache for the backward pass of one layer.
#[derive(Debug, Clone)]
pub struct TreeConvCache {
    input: Mat,
    pre: Mat,
}

impl TreeConvLayer {
    /// He-initialized layer mapping `in_dim` → `out_dim`.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        let std = (2.0 / (3.0 * in_dim as f32)).sqrt();
        TreeConvLayer {
            w_self: Param::new(Mat::randn(out_dim, in_dim, std, rng)),
            w_left: Param::new(Mat::randn(out_dim, in_dim, std, rng)),
            w_right: Param::new(Mat::randn(out_dim, in_dim, std, rng)),
            b: Param::new(Mat::zeros(1, out_dim)),
        }
    }

    /// Output width.
    pub fn out_dim(&self) -> usize {
        self.w_self.value.rows
    }

    /// Forward over all nodes at once (`x`: nodes×in).
    pub fn forward(&self, x: &Mat, tree: &TreeStructure) -> (Mat, TreeConvCache) {
        let gathered_l = gather(x, &tree.left);
        let gathered_r = gather(x, &tree.right);
        let mut pre = x.matmul_nt(&self.w_self.value);
        pre.add_assign(&gathered_l.matmul_nt(&self.w_left.value));
        pre.add_assign(&gathered_r.matmul_nt(&self.w_right.value));
        pre.add_row_broadcast(&self.b.value.data);
        let out = relu(&pre);
        (
            out,
            TreeConvCache {
                input: x.clone(),
                pre,
            },
        )
    }

    /// Backward: accumulates parameter grads, returns grad w.r.t. `x`.
    pub fn backward(&mut self, cache: &TreeConvCache, tree: &TreeStructure, grad_out: &Mat) -> Mat {
        let gpre = relu_backward(&cache.pre, grad_out);
        let gathered_l = gather(&cache.input, &tree.left);
        let gathered_r = gather(&cache.input, &tree.right);

        self.w_self.grad.add_assign(&gpre.matmul_tn(&cache.input));
        self.w_left.grad.add_assign(&gpre.matmul_tn(&gathered_l));
        self.w_right.grad.add_assign(&gpre.matmul_tn(&gathered_r));
        for (g, d) in self.b.grad.data.iter_mut().zip(gpre.col_sums()) {
            *g += d;
        }

        // grad_x: self term + scattered child terms.
        let mut grad_x = gpre.matmul(&self.w_self.value);
        let via_left = gpre.matmul(&self.w_left.value);
        scatter_add(&mut grad_x, &via_left, &tree.left);
        let via_right = gpre.matmul(&self.w_right.value);
        scatter_add(&mut grad_x, &via_right, &tree.right);
        grad_x
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.w_self.zero_grad();
        self.w_left.zero_grad();
        self.w_right.zero_grad();
        self.b.zero_grad();
    }

    /// Adam step.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        self.w_self.adam_step(lr, t, cfg);
        self.w_left.adam_step(lr, t, cfg);
        self.w_right.adam_step(lr, t, cfg);
        self.b.adam_step(lr, t, cfg);
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.w_self.len() + self.w_left.len() + self.w_right.len() + self.b.len()
    }
}

/// Rows of `x` gathered by child index (missing child → zero row).
/// Output rows are disjoint, so row blocks run in parallel for large trees.
fn gather(x: &Mat, idx: &[Option<usize>]) -> Mat {
    let mut out = Mat::zeros(x.rows, x.cols);
    let cols = x.cols;
    if cols == 0 || x.rows == 0 {
        return out;
    }
    let gather_block = |i0: usize, block: &mut [f32]| {
        for (bi, orow) in block.chunks_mut(cols).enumerate() {
            if let Some(j) = idx[i0 + bi] {
                orow.copy_from_slice(x.row(j));
            }
        }
    };
    let pool = mcsim_par::ThreadPool::global();
    if pool.threads() > 1 && x.rows > 1 && x.rows * cols >= mcsim_par::min_parallel_work() {
        let block_rows = x.rows.div_ceil(pool.threads() * 2).max(1);
        pool.parallel_for_chunks_mut(&mut out.data, block_rows * cols, |ci, block| {
            gather_block(ci * block_rows, block)
        });
    } else {
        gather_block(0, &mut out.data);
    }
    out
}

/// `target[idx[i]] += src[i]` for present children.
fn scatter_add(target: &mut Mat, src: &Mat, idx: &[Option<usize>]) {
    for (i, &j) in idx.iter().enumerate() {
        if let Some(j) = j {
            let cols = target.cols;
            for c in 0..cols {
                target.data[j * cols + c] += src.data[i * cols + c];
            }
        }
    }
}

/// Dynamic pooling over node representations: concatenated max and mean
/// pools plus a log node count. Max pooling captures dominant operators;
/// mean pooling (≈ sum / n) matches the additive structure of plan cost.
fn pool(h: &Mat) -> (Mat, Vec<usize>) {
    let d = h.cols;
    let mut pooled = Mat::zeros(1, 2 * d + 1);
    let mut arg = vec![0usize; d];
    for (c, arg_c) in arg.iter_mut().enumerate() {
        let mut best = f32::MIN;
        let mut sum = 0.0;
        for r in 0..h.rows {
            let v = h.get(r, c);
            sum += v;
            if v > best {
                best = v;
                *arg_c = r;
            }
        }
        pooled.data[c] = best;
        pooled.data[d + c] = sum / h.rows.max(1) as f32;
    }
    pooled.data[2 * d] = (1.0 + h.rows as f32).ln();
    (pooled, arg)
}

/// The full PlanEmb tree-convolutional encoder: two tree-conv layers,
/// dynamic max pooling, and a fully connected projection to the embedding.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tcn {
    conv1: TreeConvLayer,
    conv2: TreeConvLayer,
    proj: Linear,
}

/// Backward cache for one encoded tree.
#[derive(Debug, Clone)]
pub struct TcnCache {
    c1: TreeConvCache,
    h1: Mat,
    c2: TreeConvCache,
    h2: Mat,
    argmax: Vec<usize>,
    pooled: Mat,
}

impl Tcn {
    /// Builds an encoder `in_dim → hidden1 → hidden2 → emb_dim`.
    pub fn new<R: Rng>(
        in_dim: usize,
        hidden1: usize,
        hidden2: usize,
        emb_dim: usize,
        rng: &mut R,
    ) -> Tcn {
        Tcn {
            conv1: TreeConvLayer::new(in_dim, hidden1, rng),
            conv2: TreeConvLayer::new(hidden1, hidden2, rng),
            proj: Linear::new(2 * hidden2 + 1, emb_dim, rng),
        }
    }

    /// Embedding width.
    pub fn emb_dim(&self) -> usize {
        self.proj.out_dim()
    }

    /// Encodes one tree (`x`: nodes×in) into a 1×emb embedding.
    pub fn forward(&self, x: &Mat, tree: &TreeStructure) -> (Mat, TcnCache) {
        let (h1, c1) = self.conv1.forward(x, tree);
        let (h2, c2) = self.conv2.forward(&h1, tree);
        let (pooled, argmax) = pool(&h2);
        let emb = self.proj.forward(&pooled);
        (
            emb,
            TcnCache {
                c1,
                h1,
                c2,
                h2,
                argmax,
                pooled,
            },
        )
    }

    /// Inference-only encoding.
    pub fn infer(&self, x: &Mat, tree: &TreeStructure) -> Mat {
        self.forward(x, tree).0
    }

    /// Backward from an embedding gradient; accumulates parameter grads.
    pub fn backward(&mut self, cache: &TcnCache, tree: &TreeStructure, grad_emb: &Mat) {
        let grad_pooled = self.proj.backward(&cache.pooled, grad_emb);
        // Un-pool: max gradients route to argmax rows, mean gradients spread
        // over all rows. The node-count term has no input gradient.
        let d = cache.h2.cols;
        let n = cache.h2.rows.max(1) as f32;
        let mut grad_h2 = Mat::zeros(cache.h2.rows, cache.h2.cols);
        for c in 0..d {
            let r = cache.argmax[c];
            grad_h2.data[r * d + c] += grad_pooled.data[c];
            let gm = grad_pooled.data[d + c] / n;
            for row in 0..cache.h2.rows {
                grad_h2.data[row * d + c] += gm;
            }
        }
        let grad_h1 = self.conv2.backward(&cache.c2, tree, &grad_h2);
        let _ = self.conv1.backward(&cache.c1, tree, &grad_h1);
        let _ = &cache.h1;
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        self.conv1.zero_grad();
        self.conv2.zero_grad();
        self.proj.zero_grad();
    }

    /// Adam step on all parameters.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        self.conv1.adam_step(lr, t, cfg);
        self.conv2.adam_step(lr, t, cfg);
        self.proj.adam_step(lr, t, cfg);
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.conv1.param_count() + self.conv2.param_count() + self.proj.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// A three-node tree: root(0) with children 1 (left) and 2 (right).
    fn tiny_tree() -> TreeStructure {
        TreeStructure {
            left: vec![Some(1), None, None],
            right: vec![Some(2), None, None],
        }
    }

    #[test]
    fn forward_shapes_are_consistent() {
        let mut rng = StdRng::seed_from_u64(0);
        let tcn = Tcn::new(6, 8, 4, 3, &mut rng);
        let x = Mat::randn(3, 6, 1.0, &mut rng);
        let (emb, _) = tcn.forward(&x, &tiny_tree());
        assert_eq!((emb.rows, emb.cols), (1, 3));
    }

    #[test]
    fn children_influence_parent_representation() {
        let mut rng = StdRng::seed_from_u64(1);
        let tcn = Tcn::new(4, 8, 4, 2, &mut rng);
        let tree = tiny_tree();
        let x1 = Mat::randn(3, 4, 1.0, &mut rng);
        let mut x2 = x1.clone();
        // Change only the left child's features.
        for c in 0..4 {
            x2.set(1, c, x2.get(1, c) + 2.0);
        }
        let e1 = tcn.infer(&x1, &tree);
        let e2 = tcn.infer(&x2, &tree);
        assert!(e1 != e2, "child features must flow into the embedding");
    }

    #[test]
    fn gradient_check_through_the_whole_encoder() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tcn = Tcn::new(4, 6, 5, 2, &mut rng);
        let tree = tiny_tree();
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let target = Mat::randn(1, 2, 1.0, &mut rng);

        let (emb, cache) = tcn.forward(&x, &tree);
        let (_, grad) = mse(&emb, &target);
        tcn.zero_grad();
        tcn.backward(&cache, &tree, &grad);

        let loss_of = |tcn: &Tcn| {
            let e = tcn.infer(&x, &tree);
            mse(&e, &target).0
        };
        let eps = 1e-2;
        // Check a few first-layer weights (hardest path: conv1 → conv2 →
        // pool → proj).
        for idx in [0usize, 3, 10] {
            let mut tp = tcn.clone();
            tp.conv1.w_left.value.data[idx] += eps;
            let mut tm = tcn.clone();
            tm.conv1.w_left.value.data[idx] -= eps;
            let num = (loss_of(&tp) - loss_of(&tm)) / (2.0 * eps);
            let ana = tcn.conv1.w_left.grad.data[idx];
            assert!(
                (num - ana).abs() < 5e-2,
                "conv1.w_left[{idx}] num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn tcn_learns_to_count_join_like_nodes() {
        // Trees whose label is the number of nodes with feature[0] = 1.
        let mut rng = StdRng::seed_from_u64(5);
        let mut tcn = Tcn::new(3, 16, 8, 4, &mut rng);
        let mut head = Linear::new(4, 1, &mut rng);
        let cfg = AdamConfig::default();

        let make_tree = |rng: &mut StdRng| {
            // Left-deep chain of 4..7 nodes.
            let n = rng.gen_range(4..8usize);
            let mut left = vec![None; n];
            let mut right = vec![None; n];
            for i in 0..n - 1 {
                left[i] = Some(i + 1);
                if i + 2 < n && rng.gen_bool(0.3) {
                    right[i] = Some(i + 2);
                }
            }
            // Ensure it is a tree (right children must not duplicate).
            let mut seen = std::collections::HashSet::new();
            for slot in right.iter_mut() {
                if let Some(r) = *slot {
                    if !seen.insert(r) || left.contains(&Some(r)) {
                        *slot = None;
                    }
                }
            }
            let mut x = Mat::zeros(n, 3);
            let mut count = 0.0;
            for i in 0..n {
                if rng.gen_bool(0.5) {
                    x.set(i, 0, 1.0);
                    count += 1.0;
                }
                x.set(i, 1, rng.gen_range(-1.0..1.0));
                x.set(i, 2, 1.0);
            }
            (x, TreeStructure { left, right }, count)
        };

        let mut t = 0;
        for _ in 0..400 {
            tcn.zero_grad();
            head.zero_grad();
            let mut loss_sum = 0.0;
            for _ in 0..8 {
                let (x, tree, label) = make_tree(&mut rng);
                let (emb, cache) = tcn.forward(&x, &tree);
                let pred = head.forward(&emb);
                let (l, g) = mse(&pred, &Mat::from_vec(1, 1, vec![label]));
                loss_sum += l;
                let gemb = head.backward(&emb, &g);
                tcn.backward(&cache, &tree, &gemb);
            }
            let _ = loss_sum;
            t += 1;
            tcn.adam_step(0.005, t, &cfg);
            head.adam_step(0.005, t, &cfg);
        }

        // Evaluate.
        let mut err = 0.0;
        for _ in 0..50 {
            let (x, tree, label) = make_tree(&mut rng);
            let pred = head.forward(&tcn.infer(&x, &tree)).data[0];
            err += (pred - label).abs();
        }
        err /= 50.0;
        assert!(
            err < 1.0,
            "mean abs error {err} should beat trivial baseline"
        );
    }
}
