//! # tinynn
//!
//! A minimal, dependency-light neural-network library built for the LOAM
//! reproduction: dense matrices, fully connected layers, Adam, MSE and
//! cross-entropy losses, tree convolution (the PlanEmb encoder of
//! Bao/Neo/LOAM), a GCN encoder and a single-head transformer encoder (the
//! baseline cost models of Section 7.1), and the gradient-reversal utilities
//! of DANN-style adversarial domain adaptation.
//!
//! Every layer implements an explicit `forward`/`backward` pair with cached
//! activations; gradient correctness is enforced by finite-difference tests
//! in each module.
//!
//! ## Workspaces
//!
//! Each layer also exposes allocation-free `*_ws`/`*_into` variants that
//! write into caller-owned, reusable buffers (see [`workspace::Workspace`]
//! and per-layer workspace structs such as [`MlpWs`] and [`TcnWs`]). The
//! allocating entry points are thin wrappers over these, so both paths share
//! one implementation and produce bit-identical results. Training loops that
//! keep a `Workspace` plus the layer workspaces alive across steps perform
//! zero heap allocation after warmup.
//!
//! ## Example
//!
//! ```
//! use tinynn::{Mat, Mlp, AdamConfig, mse};
//! use rand::SeedableRng;
//!
//! let mut rng = rand::rngs::StdRng::seed_from_u64(0);
//! let mut mlp = Mlp::new(&[2, 8, 1], &mut rng);
//! let x = Mat::from_vec(1, 2, vec![0.5, -0.25]);
//! let (y, cache) = mlp.forward(&x);
//! let (_, grad) = mse(&y, &Mat::from_vec(1, 1, vec![1.0]));
//! mlp.zero_grad();
//! mlp.backward(&cache, &grad);
//! mlp.adam_step(0.01, 1, &AdamConfig::default());
//! ```

mod convsimd;
pub mod gcn;
pub mod grl;
pub mod kernels;
pub mod linear;
pub mod loss;
pub mod mat;
pub mod metrics;
pub mod mlp;
pub mod param;
pub mod sparse;
pub mod tcn;
pub mod transformer;
pub mod workspace;

pub use gcn::{Gcn, GcnCache, GcnWs, Graph};
pub use grl::{lambda_schedule, reverse_gradient, reverse_gradient_into};
pub use kernels::{kernel_mode, set_kernel_mode, KernelMode};
pub use linear::{relu, relu_backward, relu_mask_into, softmax_rows, softmax_rows_into, Linear};
pub use loss::{accuracy, cross_entropy_logits, cross_entropy_logits_into, mse, mse_into};
pub use mat::Mat;
pub use metrics::{concordance, mean_abs_log_ratio, r2, spearman};
pub use mlp::{Mlp, MlpCache, MlpWs};
pub use param::{AdamConfig, Param};
pub use sparse::SparseRows;
pub use tcn::{ForestWs, Tcn, TcnCache, TcnWs, TreeConvLayer, TreeStructure};
pub use transformer::{Transformer, TransformerCache, TransformerWs};
pub use workspace::{alloc_probe, GradSet, Workspace};
