//! Gradient reversal (Ganin & Lempitsky, 2015).
//!
//! The GRL acts as identity in the forward pass and multiplies the gradient
//! by `−λ` in the backward pass, so the embedding network is pushed to
//! produce domain-*invariant* features while the domain classifier is still
//! trained to discriminate (Section 4, Adaptive Training Paradigm). λ is
//! scheduled from 0 to 1 over training, following the original paper.

use crate::mat::Mat;

/// The DANN λ schedule: `λ(p) = 2 / (1 + e^{−γ p}) − 1` with γ = 10, where
/// `p ∈ [0, 1]` is training progress. Starts at 0 (let the classifier warm
/// up) and saturates at 1.
pub fn lambda_schedule(progress: f64) -> f64 {
    let p = progress.clamp(0.0, 1.0);
    2.0 / (1.0 + (-10.0 * p).exp()) - 1.0
}

/// Applies the backward side of the GRL: returns `−λ · grad`.
pub fn reverse_gradient(grad: &Mat, lambda: f64) -> Mat {
    let mut out = Mat::default();
    reverse_gradient_into(grad, lambda, &mut out);
    out
}

/// [`reverse_gradient`] writing into a reusable buffer.
pub fn reverse_gradient_into(grad: &Mat, lambda: f64, out: &mut Mat) {
    out.copy_scaled_from(grad, -(lambda as f32));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn schedule_starts_at_zero_and_saturates() {
        assert!(lambda_schedule(0.0).abs() < 1e-9);
        assert!(lambda_schedule(1.0) > 0.99);
        assert!(lambda_schedule(0.5) > 0.9); // γ=10 saturates fast
    }

    #[test]
    fn schedule_is_monotone() {
        let mut prev = -1.0;
        for i in 0..=10 {
            let l = lambda_schedule(i as f64 / 10.0);
            assert!(l >= prev);
            prev = l;
        }
    }

    #[test]
    fn reverse_negates_and_scales() {
        let g = Mat::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let r = reverse_gradient(&g, 0.5);
        assert_eq!(r.data, vec![-0.5, 1.0, -0.25]);
    }

    #[test]
    fn progress_is_clamped() {
        assert_eq!(lambda_schedule(-1.0), lambda_schedule(0.0));
        assert_eq!(lambda_schedule(2.0), lambda_schedule(1.0));
    }
}
