//! Dense row-major `f32` matrices with the handful of operations the
//! network layers need.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Mat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `data[r * cols + c]`.
    pub data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Mat {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Mat {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Mat { rows, cols, data }
    }

    /// A single row as a 1×n matrix view copy.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Gaussian init scaled by `std` (He/Xavier handled by the caller).
    pub fn randn<R: Rng>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Mat {
        Mat::from_fn(rows, cols, |_, _| {
            // Box–Muller.
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        })
    }

    /// `self @ other` (m×k · k×n → m×n).
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        let mut out = Mat::zeros(self.rows, other.cols);
        for i in 0..self.rows {
            for k in 0..self.cols {
                let a = self.data[i * self.cols + k];
                if a == 0.0 {
                    continue;
                }
                let orow = &other.data[k * other.cols..(k + 1) * other.cols];
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(orow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `selfᵀ @ other` (k×m · k×n → m×n) without materializing the transpose.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        let mut out = Mat::zeros(self.cols, other.cols);
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &other.data[k * other.cols..(k + 1) * other.cols];
            for (i, &a) in arow.iter().enumerate() {
                if a == 0.0 {
                    continue;
                }
                let out_row = &mut out.data[i * other.cols..(i + 1) * other.cols];
                for (o, &b) in out_row.iter_mut().zip(brow) {
                    *o += a * b;
                }
            }
        }
        out
    }

    /// `self @ otherᵀ` (m×k · n×k → m×n) without materializing the transpose.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        let mut out = Mat::zeros(self.rows, other.rows);
        for i in 0..self.rows {
            let arow = &self.data[i * self.cols..(i + 1) * self.cols];
            for j in 0..other.rows {
                let brow = &other.data[j * other.cols..(j + 1) * other.cols];
                let mut s = 0.0;
                for (&a, &b) in arow.iter().zip(brow) {
                    s += a * b;
                }
                out.data[i * other.rows + j] = s;
            }
        }
        out
    }

    /// Adds `v` to every row in place (bias broadcast).
    pub fn add_row_broadcast(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols);
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(v) {
                *x += b;
            }
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place scale.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of each column (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::randn(4, 3, 1.0, &mut rng);
        let b = Mat::randn(4, 5, 1.0, &mut rng);
        let at = Mat::from_fn(3, 4, |i, j| a.get(j, i));
        let want = at.matmul(&b);
        let got = a.matmul_tn(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mat::randn(4, 3, 1.0, &mut rng);
        let b = Mat::randn(5, 3, 1.0, &mut rng);
        let bt = Mat::from_fn(3, 5, |i, j| b.get(j, i));
        let want = a.matmul(&bt);
        let got = a.matmul_nt(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Mat::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn randn_has_requested_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mat::randn(100, 100, 0.5, &mut rng);
        let mean: f32 = m.data.iter().sum::<f32>() / 10_000.0;
        let var: f32 = m.data.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }
}
