//! Dense row-major `f32` matrices with the handful of operations the
//! network layers need.

use rand::Rng;
use serde::{Deserialize, Serialize};

/// A dense row-major matrix.
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct Mat {
    /// Number of rows.
    pub rows: usize,
    /// Number of columns.
    pub cols: usize,
    /// Row-major storage, `data[r * cols + c]`.
    pub data: Vec<f32>,
}

impl Mat {
    /// All-zeros matrix.
    pub fn zeros(rows: usize, cols: usize) -> Mat {
        Mat {
            rows,
            cols,
            data: vec![0.0; rows * cols],
        }
    }

    /// Builds from a function of (row, col).
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Mat {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Mat { rows, cols, data }
    }

    /// Wraps an existing buffer.
    ///
    /// # Panics
    ///
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Mat {
        assert_eq!(data.len(), rows * cols, "shape mismatch");
        Mat { rows, cols, data }
    }

    /// Reshapes in place to `rows × cols`, reusing the existing buffer when
    /// its capacity allows. Element values after the call are unspecified —
    /// callers must overwrite (or [`Mat::fill`]) before reading. Never
    /// shrinks capacity, so a warmed-up scratch matrix stops allocating.
    pub fn resize_in_place(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        // `resize` only allocates when n exceeds capacity.
        self.data.resize(rows * cols, 0.0);
    }

    /// Sets every element to `v`.
    pub fn fill(&mut self, v: f32) {
        self.data.fill(v);
    }

    /// Becomes an element-wise copy of `other` (resizing in place).
    pub fn copy_from(&mut self, other: &Mat) {
        self.resize_in_place(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// Becomes `s * other` (resizing in place).
    pub fn copy_scaled_from(&mut self, other: &Mat, s: f32) {
        self.resize_in_place(other.rows, other.cols);
        for (o, &x) in self.data.iter_mut().zip(&other.data) {
            *o = s * x;
        }
    }

    /// `self += s * other`, element-wise.
    pub fn add_scaled(&mut self, other: &Mat, s: f32) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += s * b;
        }
    }

    /// A single row as a 1×n matrix view copy.
    pub fn row(&self, r: usize) -> &[f32] {
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable row access.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Element access.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        self.data[r * self.cols + c]
    }

    /// Element assignment.
    pub fn set(&mut self, r: usize, c: usize, v: f32) {
        self.data[r * self.cols + c] = v;
    }

    /// Gaussian init scaled by `std` (He/Xavier handled by the caller).
    pub fn randn<R: Rng>(rows: usize, cols: usize, std: f32, rng: &mut R) -> Mat {
        Mat::from_fn(rows, cols, |_, _| {
            // Box–Muller.
            let u1: f32 = rng.gen_range(1e-7f32..1.0);
            let u2: f32 = rng.gen_range(0.0f32..1.0);
            std * (-2.0 * u1.ln()).sqrt() * (2.0 * std::f32::consts::PI * u2).cos()
        })
    }

    /// `self @ other` (m×k · k×n → m×n).
    ///
    /// Cache-blocked over k-panels with an unrolled axpy inner loop, and
    /// parallelized over output-row blocks above [`mcsim_par::min_parallel_work`].
    /// Serial and parallel paths share the same per-row kernel, and every
    /// output element accumulates in ascending-k order, so results are
    /// bit-identical at any thread count.
    ///
    /// # Panics
    ///
    /// Panics on inner-dimension mismatch.
    pub fn matmul(&self, other: &Mat) -> Mat {
        let mut out = Mat::default();
        self.matmul_into(other, &mut out);
        out
    }

    /// `self @ other` written into a reusable output buffer (resized in
    /// place, no allocation once warm). Same kernel as [`Mat::matmul`].
    pub fn matmul_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, other.rows, "matmul shape mismatch");
        out.resize_in_place(self.rows, other.cols);
        out.fill(0.0);
        let flops = 2 * self.rows * self.cols * other.cols;
        run_row_blocked(out, flops, |i0, chunk| {
            self.matmul_rows_into(other, i0, chunk)
        });
    }

    /// `selfᵀ @ other` (k×m · k×n → m×n) without materializing the transpose.
    ///
    /// Blocked/parallelized like [`Mat::matmul`]; bit-identical at any
    /// thread count.
    pub fn matmul_tn(&self, other: &Mat) -> Mat {
        let mut out = Mat::default();
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// `selfᵀ @ other` into a reusable buffer; kernel shared with
    /// [`Mat::matmul_tn`].
    pub fn matmul_tn_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.rows, other.rows, "matmul_tn shape mismatch");
        out.resize_in_place(self.cols, other.cols);
        out.fill(0.0);
        let flops = 2 * self.rows * self.cols * other.cols;
        run_row_blocked(out, flops, |i0, chunk| {
            self.matmul_tn_rows_into(other, i0, chunk)
        });
    }

    /// `self @ otherᵀ` (m×k · n×k → m×n) without materializing the transpose.
    ///
    /// Blocked/parallelized like [`Mat::matmul`]; bit-identical at any
    /// thread count.
    pub fn matmul_nt(&self, other: &Mat) -> Mat {
        let mut out = Mat::default();
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `self @ otherᵀ` into a reusable buffer; kernel shared with
    /// [`Mat::matmul_nt`].
    pub fn matmul_nt_into(&self, other: &Mat, out: &mut Mat) {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        // No zero-fill: the nt kernel overwrites every output element.
        out.resize_in_place(self.rows, other.rows);
        let flops = 2 * self.rows * self.cols * other.rows;
        run_row_blocked(out, flops, |i0, chunk| {
            self.matmul_nt_rows_into(other, i0, chunk)
        });
    }

    /// Fused `self @ otherᵀ + bias`, optionally ReLU-clamped, into a
    /// reusable buffer. One pass over the output instead of three
    /// (matmul_nt → add_row_broadcast → relu); each element is
    /// `dot(row, wrow) + bias[j]` then `max(0)` — the same dot kernel and
    /// operation order as the unfused sequence, so results are bit-identical
    /// to it at any thread count.
    pub fn matmul_nt_bias_into(&self, other: &Mat, bias: &[f32], relu: bool, out: &mut Mat) {
        assert_eq!(self.cols, other.cols, "matmul_nt shape mismatch");
        assert_eq!(bias.len(), other.rows, "bias length mismatch");
        out.resize_in_place(self.rows, other.rows);
        let n = other.rows;
        let flops = 2 * self.rows * self.cols * n;
        run_row_blocked(out, flops, |i0, chunk| {
            let rows = chunk.len() / n;
            for bi in 0..rows {
                let arow = self.row(i0 + bi);
                let orow = &mut chunk[bi * n..(bi + 1) * n];
                for (j, (o, &b)) in orow.iter_mut().zip(bias).enumerate() {
                    let s = dot(arow, &other.data[j * other.cols..(j + 1) * other.cols]) + b;
                    *o = if relu { s.max(0.0) } else { s };
                }
            }
        });
    }

    /// Sum of each column written into a reusable 1×cols buffer.
    pub fn col_sums_into(&self, out: &mut Mat) {
        out.resize_in_place(1, self.cols);
        out.fill(0.0);
        for r in 0..self.rows {
            for (o, &x) in out.data.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
    }

    /// Computes output rows starting at `i0` of `self @ other` into `chunk`
    /// (a zeroed `rows × other.cols` slice). k is processed in cache-sized
    /// panels so the touched rows of `other` stay warm across the block's
    /// rows; per output element the accumulation order is ascending k.
    fn matmul_rows_into(&self, other: &Mat, i0: usize, chunk: &mut [f32]) {
        let n = other.cols;
        let rows = chunk.len() / n;
        for k0 in (0..self.cols).step_by(K_PANEL) {
            let k1 = (k0 + K_PANEL).min(self.cols);
            for bi in 0..rows {
                let arow = self.row(i0 + bi);
                let orow = &mut chunk[bi * n..(bi + 1) * n];
                let brows = other.data[k0 * n..k1 * n].chunks_exact(n);
                for (&a, brow) in arow[k0..k1].iter().zip(brows) {
                    axpy(orow, a, brow);
                }
            }
        }
    }

    /// Output rows `i0..` of `selfᵀ @ other` into `chunk`. k-outer traversal
    /// streams both inputs row-by-row; accumulation order per element is
    /// ascending k, matching [`Mat::matmul_rows_into`].
    fn matmul_tn_rows_into(&self, other: &Mat, i0: usize, chunk: &mut [f32]) {
        let n = other.cols;
        let rows = chunk.len() / n;
        for k in 0..self.rows {
            let arow = &self.data[k * self.cols..(k + 1) * self.cols];
            let brow = &other.data[k * n..(k + 1) * n];
            for bi in 0..rows {
                axpy(&mut chunk[bi * n..(bi + 1) * n], arow[i0 + bi], brow);
            }
        }
    }

    /// Output rows `i0..` of `self @ otherᵀ` into `chunk`: one unrolled dot
    /// product per output element.
    fn matmul_nt_rows_into(&self, other: &Mat, i0: usize, chunk: &mut [f32]) {
        let n = other.rows;
        let rows = chunk.len() / n;
        for bi in 0..rows {
            let arow = self.row(i0 + bi);
            let orow = &mut chunk[bi * n..(bi + 1) * n];
            for (j, o) in orow.iter_mut().enumerate() {
                *o = dot(arow, &other.data[j * other.cols..(j + 1) * other.cols]);
            }
        }
    }

    /// Adds `v` to every row in place (bias broadcast).
    pub fn add_row_broadcast(&mut self, v: &[f32]) {
        assert_eq!(v.len(), self.cols);
        for r in 0..self.rows {
            for (x, &b) in self.row_mut(r).iter_mut().zip(v) {
                *x += b;
            }
        }
    }

    /// Element-wise in-place addition.
    pub fn add_assign(&mut self, other: &Mat) {
        assert_eq!(self.data.len(), other.data.len());
        for (a, &b) in self.data.iter_mut().zip(&other.data) {
            *a += b;
        }
    }

    /// Element-wise in-place scale.
    pub fn scale(&mut self, s: f32) {
        for a in &mut self.data {
            *a *= s;
        }
    }

    /// Sum of each column (used for bias gradients).
    pub fn col_sums(&self) -> Vec<f32> {
        let mut out = vec![0.0; self.cols];
        for r in 0..self.rows {
            for (o, &x) in out.iter_mut().zip(self.row(r)) {
                *o += x;
            }
        }
        out
    }

    /// Frobenius norm.
    pub fn norm(&self) -> f32 {
        self.data.iter().map(|x| x * x).sum::<f32>().sqrt()
    }
}

/// k-panel size for cache blocking: 64 rows of a 256-column f32 matrix is
/// 64 KiB, sized to keep the panel of the right-hand operand L2-resident
/// while it is reused across a block of output rows.
const K_PANEL: usize = 64;

/// Dispatches a row-block matmul kernel either serially (one block covering
/// the whole output) or across the global pool. `kernel(i0, chunk)` must
/// fill output rows `i0..i0 + chunk.len()/out.cols`. Row-partitioning means
/// every output element is computed entirely by one worker with the shared
/// kernel, so results are bit-identical regardless of thread count or block
/// boundaries.
pub(crate) fn run_row_blocked(
    out: &mut Mat,
    flops: usize,
    kernel: impl Fn(usize, &mut [f32]) + Sync,
) {
    if out.rows == 0 || out.cols == 0 {
        return;
    }
    let pool = mcsim_par::ThreadPool::global();
    let threads = pool.threads();
    if threads > 1 && out.rows > 1 && flops >= mcsim_par::min_parallel_work() {
        let block = out.rows.div_ceil(threads * 2).max(1);
        let cols = out.cols;
        pool.parallel_for_chunks_mut(&mut out.data, block * cols, |ci, chunk| {
            kernel(ci * block, chunk)
        });
    } else {
        kernel(0, &mut out.data);
    }
}

/// `out += a * x`: dispatches on the process-wide [`crate::kernels`] mode.
/// Each output element is touched exactly once, so the unroll width never
/// changes any accumulation order — both modes are bit-identical.
#[inline]
pub(crate) fn axpy(out: &mut [f32], a: f32, x: &[f32]) {
    match crate::kernels::kernel_mode() {
        crate::kernels::KernelMode::Scalar => axpy_scalar(out, a, x),
        crate::kernels::KernelMode::Simd => axpy_unrolled8(out, a, x),
    }
}

/// Reference `out += a * x`, unrolled by 4.
#[inline]
fn axpy_scalar(out: &mut [f32], a: f32, x: &[f32]) {
    let n = out.len();
    let (main_o, tail_o) = out.split_at_mut(n - n % 4);
    let (main_x, tail_x) = x.split_at(n - n % 4);
    for (o, b) in main_o.chunks_exact_mut(4).zip(main_x.chunks_exact(4)) {
        o[0] += a * b[0];
        o[1] += a * b[1];
        o[2] += a * b[2];
        o[3] += a * b[3];
    }
    for (o, &b) in tail_o.iter_mut().zip(tail_x) {
        *o += a * b;
    }
}

/// `out += a * x` retiring 8 elements per iteration. Elementwise, so
/// bit-identical to [`axpy_scalar`] at any width; the wider straight-line
/// body vectorizes to full-width SIMD.
#[inline]
fn axpy_unrolled8(out: &mut [f32], a: f32, x: &[f32]) {
    let n = out.len();
    let (main_o, tail_o) = out.split_at_mut(n - n % 8);
    let (main_x, tail_x) = x.split_at(n - n % 8);
    for (o, b) in main_o.chunks_exact_mut(8).zip(main_x.chunks_exact(8)) {
        o[0] += a * b[0];
        o[1] += a * b[1];
        o[2] += a * b[2];
        o[3] += a * b[3];
        o[4] += a * b[4];
        o[5] += a * b[5];
        o[6] += a * b[6];
        o[7] += a * b[7];
    }
    for (o, &b) in tail_o.iter_mut().zip(tail_x) {
        *o += a * b;
    }
}

/// Dot product with four independent accumulators (breaks the add-latency
/// chain); combined as `((s0 + s1) + (s2 + s3)) + tail`, a fixed order used
/// by serial and parallel paths alike. Dispatches on the process-wide
/// [`crate::kernels`] mode; both variants share the four-lane reduction
/// shape and are bit-identical.
#[inline]
pub(crate) fn dot(x: &[f32], y: &[f32]) -> f32 {
    match crate::kernels::kernel_mode() {
        crate::kernels::KernelMode::Scalar => dot_scalar(x, y),
        crate::kernels::KernelMode::Simd => dot_unrolled8(x, y),
    }
}

/// Reference four-lane dot: 4 elements per iteration.
#[inline]
fn dot_scalar(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len();
    let main = n - n % 4;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (a, b) in x[..main].chunks_exact(4).zip(y[..main].chunks_exact(4)) {
        s0 += a[0] * b[0];
        s1 += a[1] * b[1];
        s2 += a[2] * b[2];
        s3 += a[3] * b[3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (&a, &b) in x[main..].iter().zip(&y[main..]) {
        s += a * b;
    }
    s
}

/// Four-lane dot retiring 8 elements (two 4-lane rounds) per iteration.
/// Lane `j` still accumulates exactly the elements `x[j], x[j+4], x[j+8], …`
/// in ascending order, and the lanes combine as
/// `((s0 + s1) + (s2 + s3)) + tail` — the same floating-point operations in
/// the same order as [`dot_scalar`], hence bit-identical.
#[inline]
fn dot_unrolled8(x: &[f32], y: &[f32]) -> f32 {
    let n = x.len();
    let main4 = n - n % 4;
    let main8 = n - n % 8;
    let (mut s0, mut s1, mut s2, mut s3) = (0.0f32, 0.0f32, 0.0f32, 0.0f32);
    for (a, b) in x[..main8].chunks_exact(8).zip(y[..main8].chunks_exact(8)) {
        s0 += a[0] * b[0];
        s1 += a[1] * b[1];
        s2 += a[2] * b[2];
        s3 += a[3] * b[3];
        s0 += a[4] * b[4];
        s1 += a[5] * b[5];
        s2 += a[6] * b[6];
        s3 += a[7] * b[7];
    }
    if main8 < main4 {
        // One leftover 4-lane round.
        let (a, b) = (&x[main8..main4], &y[main8..main4]);
        s0 += a[0] * b[0];
        s1 += a[1] * b[1];
        s2 += a[2] * b[2];
        s3 += a[3] * b[3];
    }
    let mut s = (s0 + s1) + (s2 + s3);
    for (&a, &b) in x[main4..].iter().zip(&y[main4..]) {
        s += a * b;
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn matmul_matches_hand_computation() {
        let a = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, 4.0, 5.0, 6.0]);
        let b = Mat::from_vec(3, 2, vec![7.0, 8.0, 9.0, 10.0, 11.0, 12.0]);
        let c = a.matmul(&b);
        assert_eq!(c.data, vec![58.0, 64.0, 139.0, 154.0]);
    }

    #[test]
    fn matmul_tn_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(1);
        let a = Mat::randn(4, 3, 1.0, &mut rng);
        let b = Mat::randn(4, 5, 1.0, &mut rng);
        let at = Mat::from_fn(3, 4, |i, j| a.get(j, i));
        let want = at.matmul(&b);
        let got = a.matmul_tn(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn matmul_nt_equals_explicit_transpose() {
        let mut rng = StdRng::seed_from_u64(2);
        let a = Mat::randn(4, 3, 1.0, &mut rng);
        let b = Mat::randn(5, 3, 1.0, &mut rng);
        let bt = Mat::from_fn(3, 5, |i, j| b.get(j, i));
        let want = a.matmul(&bt);
        let got = a.matmul_nt(&b);
        for (x, y) in got.data.iter().zip(&want.data) {
            assert!((x - y).abs() < 1e-5);
        }
    }

    #[test]
    fn broadcast_and_col_sums() {
        let mut a = Mat::zeros(3, 2);
        a.add_row_broadcast(&[1.0, 2.0]);
        assert_eq!(a.col_sums(), vec![3.0, 6.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_rejects_bad_shapes() {
        let a = Mat::zeros(2, 3);
        let b = Mat::zeros(2, 3);
        let _ = a.matmul(&b);
    }

    #[test]
    fn into_variants_match_allocating_kernels_bitwise() {
        let mut rng = StdRng::seed_from_u64(11);
        let a = Mat::randn(5, 7, 1.0, &mut rng);
        let b = Mat::randn(7, 4, 1.0, &mut rng);
        let c = Mat::randn(5, 4, 1.0, &mut rng);
        let d = Mat::randn(4, 7, 1.0, &mut rng);
        // Start from a deliberately wrong-shaped dirty buffer to prove the
        // resize-in-place path leaves no stale state behind.
        let mut out = Mat::from_vec(2, 2, vec![9.0; 4]);
        a.matmul_into(&b, &mut out);
        assert_eq!(out, a.matmul(&b));
        a.matmul_tn_into(&c, &mut out);
        assert_eq!(out, a.matmul_tn(&c));
        a.matmul_nt_into(&d, &mut out);
        assert_eq!(out, a.matmul_nt(&d));
        c.col_sums_into(&mut out);
        assert_eq!(out.data, c.col_sums());
    }

    #[test]
    fn fused_bias_relu_matches_unfused_sequence_bitwise() {
        let mut rng = StdRng::seed_from_u64(12);
        let x = Mat::randn(6, 9, 1.0, &mut rng);
        let w = Mat::randn(5, 9, 1.0, &mut rng);
        let bias: Vec<f32> = (0..5).map(|i| (i as f32) - 2.0).collect();
        let mut want = x.matmul_nt(&w);
        want.add_row_broadcast(&bias);
        let mut fused = Mat::default();
        x.matmul_nt_bias_into(&w, &bias, false, &mut fused);
        assert_eq!(fused, want);
        for v in want.data.iter_mut() {
            *v = v.max(0.0);
        }
        x.matmul_nt_bias_into(&w, &bias, true, &mut fused);
        assert_eq!(fused, want);
    }

    /// The unrolled-8 kernels must reproduce the scalar reference bit for
    /// bit across lengths that exercise every 8/4/tail split, both at the
    /// kernel level and through a full matmul.
    #[test]
    fn unrolled8_kernels_match_scalar_bitwise() {
        use crate::kernels::{set_kernel_mode, KernelMode, MODE_TEST_MUTEX};
        let _guard = MODE_TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let mut rng = StdRng::seed_from_u64(31);
        for n in [0usize, 1, 3, 4, 5, 7, 8, 9, 12, 15, 16, 17, 31, 64, 249] {
            let x: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let y: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            assert_eq!(
                dot_scalar(&x, &y).to_bits(),
                dot_unrolled8(&x, &y).to_bits(),
                "dot length {n}"
            );
            let base: Vec<f32> = (0..n).map(|_| rng.gen_range(-2.0..2.0)).collect();
            let (mut oa, mut ob) = (base.clone(), base.clone());
            axpy_scalar(&mut oa, 0.7, &x);
            axpy_unrolled8(&mut ob, 0.7, &x);
            let (ba, bb): (Vec<u32>, Vec<u32>) = (
                oa.iter().map(|v| v.to_bits()).collect(),
                ob.iter().map(|v| v.to_bits()).collect(),
            );
            assert_eq!(ba, bb, "axpy length {n}");
        }
        // End to end: every matmul variant under both modes.
        let a = Mat::randn(6, 13, 1.0, &mut rng);
        let b = Mat::randn(13, 9, 1.0, &mut rng);
        let c = Mat::randn(13, 6, 1.0, &mut rng);
        let d = Mat::randn(9, 13, 1.0, &mut rng);
        let bias: Vec<f32> = (0..9).map(|i| i as f32 * 0.3 - 1.0).collect();
        let prev = set_kernel_mode(KernelMode::Scalar);
        let (m1, m2, m3) = (a.matmul(&b), c.matmul_tn(&b), a.matmul_nt(&d));
        let mut m4 = Mat::default();
        a.matmul_nt_bias_into(&d, &bias, true, &mut m4);
        set_kernel_mode(KernelMode::Simd);
        assert_eq!(m1, a.matmul(&b));
        assert_eq!(m2, c.matmul_tn(&b));
        assert_eq!(m3, a.matmul_nt(&d));
        let mut u4 = Mat::default();
        a.matmul_nt_bias_into(&d, &bias, true, &mut u4);
        assert_eq!(m4, u4);
        set_kernel_mode(prev);
    }

    #[test]
    fn copy_and_scale_helpers() {
        let a = Mat::from_vec(2, 2, vec![1.0, -2.0, 3.0, -4.0]);
        let mut b = Mat::default();
        b.copy_scaled_from(&a, -0.5);
        assert_eq!(b.data, vec![-0.5, 1.0, -1.5, 2.0]);
        b.add_scaled(&a, 0.5);
        assert_eq!(b.data, vec![0.0, 0.0, 0.0, 0.0]);
        b.copy_from(&a);
        assert_eq!(b, a);
        b.fill(7.0);
        assert_eq!(b.data, vec![7.0; 4]);
    }

    #[test]
    fn randn_has_requested_spread() {
        let mut rng = StdRng::seed_from_u64(3);
        let m = Mat::randn(100, 100, 0.5, &mut rng);
        let mean: f32 = m.data.iter().sum::<f32>() / 10_000.0;
        let var: f32 = m.data.iter().map(|x| (x - mean).powi(2)).sum::<f32>() / 10_000.0;
        assert!(mean.abs() < 0.02);
        assert!((var.sqrt() - 0.5).abs() < 0.02);
    }
}
