//! Regression and ranking quality metrics used across the harness and
//! probes: R², MAE in log space, pairwise concordance (Kendall-style), and
//! Spearman rank correlation.

/// Coefficient of determination R² of predictions against targets.
///
/// Returns 0.0 for degenerate inputs (fewer than 2 points or zero target
/// variance).
pub fn r2(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len());
    if target.len() < 2 {
        return 0.0;
    }
    let mean = target.iter().sum::<f64>() / target.len() as f64;
    let ss_tot: f64 = target.iter().map(|t| (t - mean).powi(2)).sum();
    if ss_tot <= 0.0 {
        return 0.0;
    }
    let ss_res: f64 = pred.iter().zip(target).map(|(p, t)| (p - t).powi(2)).sum();
    1.0 - ss_res / ss_tot
}

/// Mean absolute error of `ln(pred/target)` — the calibration measure for
/// multiplicative cost predictions.
pub fn mean_abs_log_ratio(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len());
    if pred.is_empty() {
        return 0.0;
    }
    pred.iter()
        .zip(target)
        .map(|(p, t)| (p.max(1e-12) / t.max(1e-12)).ln().abs())
        .sum::<f64>()
        / pred.len() as f64
}

/// Pairwise concordance: the fraction of (i, j) pairs whose predicted order
/// matches the target order, among pairs with distinct targets. 0.5 is
/// chance; 1.0 is a perfect ranking.
pub fn concordance(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len());
    let mut agree = 0usize;
    let mut total = 0usize;
    for i in 0..pred.len() {
        for j in i + 1..pred.len() {
            if target[i] != target[j] {
                total += 1;
                if (pred[i] - pred[j]) * (target[i] - target[j]) > 0.0 {
                    agree += 1;
                }
            }
        }
    }
    if total == 0 {
        0.5
    } else {
        agree as f64 / total as f64
    }
}

/// Average ranks with ties sharing the mean rank.
fn ranks(xs: &[f64]) -> Vec<f64> {
    let mut idx: Vec<usize> = (0..xs.len()).collect();
    idx.sort_by(|&a, &b| {
        xs[a]
            .partial_cmp(&xs[b])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    let mut out = vec![0.0; xs.len()];
    let mut i = 0;
    while i < idx.len() {
        let mut j = i;
        while j + 1 < idx.len() && xs[idx[j + 1]] == xs[idx[i]] {
            j += 1;
        }
        let mean_rank = (i + j) as f64 / 2.0 + 1.0;
        for &k in &idx[i..=j] {
            out[k] = mean_rank;
        }
        i = j + 1;
    }
    out
}

/// Spearman rank correlation ρ ∈ [−1, 1] (Pearson on ranks, tie-aware).
pub fn spearman(pred: &[f64], target: &[f64]) -> f64 {
    assert_eq!(pred.len(), target.len());
    if pred.len() < 2 {
        return 0.0;
    }
    let ra = ranks(pred);
    let rb = ranks(target);
    let n = ra.len() as f64;
    let ma = ra.iter().sum::<f64>() / n;
    let mb = rb.iter().sum::<f64>() / n;
    let cov: f64 = ra.iter().zip(&rb).map(|(a, b)| (a - ma) * (b - mb)).sum();
    let va: f64 = ra.iter().map(|a| (a - ma).powi(2)).sum();
    let vb: f64 = rb.iter().map(|b| (b - mb).powi(2)).sum();
    if va <= 0.0 || vb <= 0.0 {
        return 0.0;
    }
    cov / (va * vb).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn r2_is_one_for_perfect_predictions() {
        let t = [1.0, 2.0, 3.0, 4.0];
        assert!((r2(&t, &t) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn r2_is_zero_for_mean_predictor() {
        let t = [1.0, 2.0, 3.0];
        let mean = [2.0, 2.0, 2.0];
        assert!(r2(&mean, &t).abs() < 1e-12);
    }

    #[test]
    fn concordance_detects_perfect_and_reversed_orders() {
        let t = [1.0, 2.0, 3.0, 4.0];
        let rev = [4.0, 3.0, 2.0, 1.0];
        assert_eq!(concordance(&t, &t), 1.0);
        assert_eq!(concordance(&rev, &t), 0.0);
    }

    #[test]
    fn concordance_of_constant_targets_is_chance() {
        assert_eq!(concordance(&[1.0, 2.0], &[5.0, 5.0]), 0.5);
    }

    #[test]
    fn spearman_matches_direction() {
        let t = [1.0, 2.0, 3.0, 4.0, 5.0];
        let monotone = [10.0, 20.0, 25.0, 40.0, 100.0];
        assert!((spearman(&monotone, &t) - 1.0).abs() < 1e-12);
        let anti: Vec<f64> = monotone.iter().map(|x| -x).collect();
        assert!((spearman(&anti, &t) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn spearman_handles_ties() {
        let a = [1.0, 1.0, 2.0, 3.0];
        let b = [5.0, 5.0, 6.0, 7.0];
        let rho = spearman(&a, &b);
        assert!(rho > 0.99, "{rho}");
    }

    #[test]
    fn log_ratio_error_is_symmetric() {
        let a = mean_abs_log_ratio(&[2.0], &[1.0]);
        let b = mean_abs_log_ratio(&[1.0], &[2.0]);
        assert!((a - b).abs() < 1e-12);
        assert!((a - 2f64.ln()).abs() < 1e-12);
    }
}
