//! Reusable scratch memory for the training hot path.
//!
//! [`Workspace`] is a LIFO pool of [`Mat`] buffers: a layer borrows a
//! matrix for the duration of a closure, and the buffer (with its grown
//! capacity) goes back on the free list afterwards. After one warm-up step
//! every shape has been seen, so a training step borrows and returns the
//! same buffers without touching the allocator.
//!
//! [`GradSet`] is a flat bundle of gradient matrices in a module's
//! canonical parameter order, used by the microbatch trainer to accumulate
//! per-slot partial gradients that are later folded deterministically.

use crate::mat::Mat;

/// A LIFO pool of reusable matrix buffers.
#[derive(Debug, Default)]
pub struct Workspace {
    free: Vec<Mat>,
}

impl Workspace {
    /// An empty workspace; buffers are created on first use and recycled
    /// afterwards.
    pub fn new() -> Workspace {
        Workspace::default()
    }

    /// Borrows a `rows × cols` buffer for the duration of `f`. Contents on
    /// entry are unspecified; the closure also receives the workspace back
    /// so nested borrows take further (distinct) buffers.
    pub fn with<R>(
        &mut self,
        rows: usize,
        cols: usize,
        f: impl FnOnce(&mut Workspace, &mut Mat) -> R,
    ) -> R {
        let mut m = self.free.pop().unwrap_or_default();
        m.resize_in_place(rows, cols);
        let r = f(self, &mut m);
        self.free.push(m);
        r
    }

    /// Like [`Workspace::with`] but the buffer is zeroed on entry.
    pub fn with_zeroed<R>(
        &mut self,
        rows: usize,
        cols: usize,
        f: impl FnOnce(&mut Workspace, &mut Mat) -> R,
    ) -> R {
        self.with(rows, cols, |ws, m| {
            m.fill(0.0);
            f(ws, m)
        })
    }

    /// Bytes currently held by pooled buffers (steady-state footprint).
    pub fn bytes(&self) -> usize {
        self.free
            .iter()
            .map(|m| m.data.capacity() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// A bundle of gradient matrices in a module's canonical parameter order.
#[derive(Debug, Default)]
pub struct GradSet {
    /// One gradient matrix per parameter, same order as the module's
    /// `params()` accessor.
    pub mats: Vec<Mat>,
}

impl GradSet {
    /// Builds a zeroed set from `(rows, cols)` shapes.
    pub fn from_shapes(shapes: &[(usize, usize)]) -> GradSet {
        GradSet {
            mats: shapes.iter().map(|&(r, c)| Mat::zeros(r, c)).collect(),
        }
    }

    /// Zeroes every matrix in place.
    pub fn zero(&mut self) {
        for m in &mut self.mats {
            m.fill(0.0);
        }
    }

    /// Bytes held by the gradient buffers.
    pub fn bytes(&self) -> usize {
        self.mats
            .iter()
            .map(|m| m.data.capacity() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// A counting probe around the system allocator.
///
/// The `experiments` binary installs [`alloc_probe::CountingAllocator`] as
/// its `#[global_allocator]`; anything linked without it reads a constant
/// zero. The train benchmark samples [`alloc_probe::allocation_count`]
/// around step windows to prove the steady state allocates nothing.
pub mod alloc_probe {
    use std::alloc::{GlobalAlloc, Layout, System};
    use std::sync::atomic::{AtomicU64, Ordering};

    static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

    /// Forwards to the system allocator while counting `alloc` calls.
    pub struct CountingAllocator;

    // SAFETY: pure pass-through to `System`; the counter has no effect on
    // the returned memory.
    unsafe impl GlobalAlloc for CountingAllocator {
        unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.alloc(layout)
        }

        unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
            System.dealloc(ptr, layout)
        }

        unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
            ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
            System.realloc(ptr, layout, new_size)
        }
    }

    /// Heap allocations observed so far (0 unless the probe is installed as
    /// the global allocator).
    pub fn allocation_count() -> u64 {
        ALLOCATIONS.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn workspace_recycles_buffers() {
        let mut ws = Workspace::new();
        let ptr1 = ws.with(4, 4, |_, m| {
            m.fill(1.0);
            m.data.as_ptr() as usize
        });
        // Same (only) pooled buffer comes back for a smaller request.
        let ptr2 = ws.with(2, 3, |_, m| {
            assert_eq!((m.rows, m.cols), (2, 3));
            m.data.as_ptr() as usize
        });
        assert_eq!(ptr1, ptr2);
        assert!(ws.bytes() >= 16 * 4);
    }

    #[test]
    fn nested_borrows_get_distinct_buffers() {
        let mut ws = Workspace::new();
        ws.with(2, 2, |ws, outer| {
            outer.fill(5.0);
            ws.with_zeroed(2, 2, |_, inner| {
                assert!(inner.data.iter().all(|&v| v == 0.0));
            });
            assert!(outer.data.iter().all(|&v| v == 5.0));
        });
        // Both buffers returned to the pool.
        assert_eq!(ws.free.len(), 2);
    }

    #[test]
    fn gradset_shapes_and_zero() {
        let mut gs = GradSet::from_shapes(&[(2, 3), (1, 4)]);
        gs.mats[0].set(1, 2, 7.0);
        gs.zero();
        assert!(gs.mats.iter().all(|m| m.data.iter().all(|&v| v == 0.0)));
        assert_eq!(gs.mats[0].rows, 2);
        assert!(gs.bytes() >= 10 * 4);
    }
}
