//! Runtime-selectable inner kernels: the scalar 4-lane reference kernels vs
//! SIMD-oriented variants (8-element unrolled dots/epilogues plus the
//! register-blocked tree-convolution kernels of the `convsimd` module).
//!
//! The SIMD kernels are **bit-identical** to the reference by construction:
//! every variant keeps the reference's four accumulator lanes and feeds each
//! lane the same elements in the same order (lane 0 still sees
//! `x[0]·y[0], x[4]·y[4], x[8]·y[8], …` sequentially) and combines them as
//! `((s0 + s1) + (s2 + s3)) + tail`. The unrolled dot retires two 4-lane
//! rounds per iteration; the blocked convolution kernels keep one 4-lane
//! accumulator per output (a 128-bit vector register holds exactly the four
//! lanes) and only restructure *which outputs* share each input load.
//! Lane-wise IEEE adds/multiplies are the same operations in the same order,
//! so not a single rounding step changes. An 8-accumulator dot or an FMA
//! kernel would be faster still but changes the reduction tree or the
//! rounding — and with it the bits — so they are deliberately not offered.
//!
//! `std::simd` would express the same thing more directly but is
//! nightly-only; explicit unrolls plus baseline-`x86_64` SSE2 intrinsics
//! (with portable fallbacks) keep the crate on stable.
//!
//! The mode is a process-wide atomic so benchmarks can compare both paths on
//! identical inputs and tests can assert their bitwise equality. Elementwise
//! epilogues (ReLU clamp, softmax scaling, `axpy`) touch every element
//! exactly once, so any vector width is trivially bit-identical there.

use std::sync::atomic::{AtomicU8, Ordering};

/// Which inner-kernel width the hot loops use.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum KernelMode {
    /// The reference kernels: 4 accumulator lanes, 4 elements per iteration.
    Scalar,
    /// The vectorized kernels: unrolled 4-lane dots/epilogues plus the
    /// register-blocked tree-convolution kernels of the `convsimd` module.
    /// Bit-identical to [`KernelMode::Scalar`]; the default.
    Simd,
}

/// `KernelMode::Simd` encoded for the atomic.
const MODE_SIMD: u8 = 1;

static KERNEL_MODE: AtomicU8 = AtomicU8::new(MODE_SIMD);

/// The currently selected kernel mode.
#[inline]
pub fn kernel_mode() -> KernelMode {
    if KERNEL_MODE.load(Ordering::Relaxed) == MODE_SIMD {
        KernelMode::Simd
    } else {
        KernelMode::Scalar
    }
}

/// Selects the kernel mode process-wide and returns the previous mode (so
/// benchmarks and tests can restore it). Both modes produce bit-identical
/// results; this knob exists to measure the difference, not to trade it.
pub fn set_kernel_mode(mode: KernelMode) -> KernelMode {
    let raw = match mode {
        KernelMode::Scalar => 0,
        KernelMode::Simd => MODE_SIMD,
    };
    if KERNEL_MODE.swap(raw, Ordering::Relaxed) == MODE_SIMD {
        KernelMode::Simd
    } else {
        KernelMode::Scalar
    }
}

/// Serializes unit tests that toggle the process-wide mode and then read it
/// back; value-level assertions never need this (both modes produce the same
/// bits), only assertions on [`kernel_mode`] itself do.
#[cfg(test)]
pub(crate) static MODE_TEST_MUTEX: std::sync::Mutex<()> = std::sync::Mutex::new(());

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mode_round_trips_and_reports_previous() {
        let _guard = MODE_TEST_MUTEX.lock().unwrap_or_else(|e| e.into_inner());
        let initial = kernel_mode();
        let prev = set_kernel_mode(KernelMode::Scalar);
        assert_eq!(prev, initial);
        assert_eq!(kernel_mode(), KernelMode::Scalar);
        let prev = set_kernel_mode(KernelMode::Simd);
        assert_eq!(prev, KernelMode::Scalar);
        assert_eq!(kernel_mode(), KernelMode::Simd);
        set_kernel_mode(initial);
    }
}
