//! Multi-layer perceptrons (ReLU hidden layers, linear output).

use crate::linear::Linear;
use crate::mat::Mat;
use crate::param::{AdamConfig, Param};
use crate::workspace::Workspace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An MLP with ReLU after every layer except the last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers in order.
    pub layers: Vec<Linear>,
}

/// Reusable per-model activation buffers for the workspace forward/backward
/// pair. One warm instance per training worker; never reallocates once every
/// batch shape has been seen.
#[derive(Debug, Clone, Default)]
pub struct MlpWs {
    /// Post-activation output of each layer (final layer: raw output).
    acts: Vec<Mat>,
}

impl MlpWs {
    /// The network output of the last `forward_ws` call.
    pub fn out(&self) -> &Mat {
        self.acts.last().expect("forward_ws not called yet")
    }

    /// Bytes held by the activation buffers.
    pub fn bytes(&self) -> usize {
        self.acts
            .iter()
            .map(|m| m.data.capacity() * std::mem::size_of::<f32>())
            .sum()
    }
}

/// Forward-pass cache needed for backward.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// The forward input.
    x: Mat,
    /// Activation buffers from the forward pass.
    ws: MlpWs,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[32, 16, 1]` for
    /// 32 → 16 → 1.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new<R: Rng>(dims: &[usize], rng: &mut R) -> Mlp {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Forward pass returning the output and a cache for backward.
    ///
    /// Thin allocating wrapper over [`Mlp::forward_ws`].
    pub fn forward(&self, x: &Mat) -> (Mat, MlpCache) {
        let mut ws = MlpWs::default();
        self.forward_ws(x, &mut ws);
        let out = ws.out().clone();
        (out, MlpCache { x: x.clone(), ws })
    }

    /// Allocation-free forward: fused matmul+bias(+ReLU) per layer into the
    /// workspace's reusable activation buffers.
    pub fn forward_ws(&self, x: &Mat, ws: &mut MlpWs) {
        let n = self.layers.len();
        ws.acts.resize_with(n, Mat::default);
        for (i, layer) in self.layers.iter().enumerate() {
            let (done, rest) = ws.acts.split_at_mut(i);
            let input: &Mat = if i == 0 { x } else { &done[i - 1] };
            if i + 1 < n {
                layer.forward_relu_into(input, &mut rest[0]);
            } else {
                layer.forward_into(input, &mut rest[0]);
            }
        }
    }

    /// Inference-only forward (no cache).
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut ws = MlpWs::default();
        self.forward_ws(x, &mut ws);
        ws.acts.pop().expect("at least one layer")
    }

    /// Inference-only forward into a caller-owned workspace: zero steady-state
    /// allocations once the largest batch shape has been seen. Returns the
    /// output buffer (also reachable as `ws.out()`).
    pub fn infer_ws<'a>(&self, x: &Mat, ws: &'a mut MlpWs) -> &'a Mat {
        self.forward_ws(x, ws);
        ws.out()
    }

    /// Backward pass: accumulates parameter gradients, returns the gradient
    /// w.r.t. the MLP input.
    ///
    /// Thin allocating wrapper over [`Mlp::backward_ws`].
    pub fn backward(&mut self, cache: &MlpCache, grad_out: &Mat) -> Mat {
        let mut grads: Vec<Mat> = self
            .grad_shapes()
            .iter()
            .map(|&(r, c)| Mat::zeros(r, c))
            .collect();
        let mut scratch = Workspace::new();
        let mut grad_in = Mat::default();
        self.backward_ws(
            &cache.x,
            &cache.ws,
            grad_out,
            &mut grads,
            Some(&mut grad_in),
            &mut scratch,
        );
        self.add_grads(&grads);
        grad_in
    }

    /// Allocation-free backward. Parameter gradients are added into `grads`
    /// (layout per [`Mlp::grad_shapes`]); `grad_in`, when requested, is
    /// overwritten with the gradient w.r.t. the forward input. Intermediate
    /// gradients live in `scratch`.
    pub fn backward_ws(
        &self,
        x: &Mat,
        ws: &MlpWs,
        grad_out: &Mat,
        grads: &mut [Mat],
        grad_in: Option<&mut Mat>,
        scratch: &mut Workspace,
    ) {
        assert_eq!(grads.len(), 2 * self.layers.len(), "grad buffer layout");
        self.backward_from(
            self.layers.len() - 1,
            x,
            ws,
            grad_out,
            grads,
            grad_in,
            scratch,
        );
    }

    /// Processes layer `i` with `incoming` (the gradient w.r.t. that layer's
    /// post-activation output) and recurses toward layer 0; recursion keeps
    /// the chain's intermediate buffers properly nested in `scratch`.
    #[allow(clippy::too_many_arguments)]
    fn backward_from(
        &self,
        i: usize,
        x: &Mat,
        ws: &MlpWs,
        incoming: &Mat,
        grads: &mut [Mat],
        grad_in: Option<&mut Mat>,
        scratch: &mut Workspace,
    ) {
        let layer = &self.layers[i];
        let input: &Mat = if i == 0 { x } else { &ws.acts[i - 1] };
        let hidden = i + 1 < self.layers.len();
        if i == 0 {
            let (gw, gb) = two_muts(grads, 2 * i);
            if hidden {
                Linear::backward_relu_into(
                    &layer.w.value,
                    input,
                    &ws.acts[i],
                    incoming,
                    gw,
                    gb,
                    grad_in,
                    scratch,
                );
            } else {
                Linear::backward_into(&layer.w.value, input, incoming, gw, gb, grad_in, scratch);
            }
        } else {
            scratch.with(input.rows, layer.in_dim(), |scratch, gin| {
                {
                    let (gw, gb) = two_muts(grads, 2 * i);
                    if hidden {
                        Linear::backward_relu_into(
                            &layer.w.value,
                            input,
                            &ws.acts[i],
                            incoming,
                            gw,
                            gb,
                            Some(gin),
                            scratch,
                        );
                    } else {
                        Linear::backward_into(
                            &layer.w.value,
                            input,
                            incoming,
                            gw,
                            gb,
                            Some(gin),
                            scratch,
                        );
                    }
                }
                self.backward_from(i - 1, x, ws, gin, grads, grad_in, scratch);
            });
        }
    }

    /// Parameters in canonical order: `[w0, b0, w1, b1, ...]`.
    pub fn params(&self) -> Vec<&Param> {
        self.layers.iter().flat_map(|l| [&l.w, &l.b]).collect()
    }

    /// Shapes of the gradient buffers in [`Mlp::params`] order.
    pub fn grad_shapes(&self) -> Vec<(usize, usize)> {
        self.layers
            .iter()
            .flat_map(|l| {
                [
                    (l.w.value.rows, l.w.value.cols),
                    (l.b.value.rows, l.b.value.cols),
                ]
            })
            .collect()
    }

    /// Adds externally accumulated gradients (in [`Mlp::params`] order) into
    /// the layers' gradient accumulators.
    pub fn add_grads(&mut self, mats: &[Mat]) {
        assert_eq!(mats.len(), 2 * self.layers.len(), "grad buffer layout");
        for (i, l) in self.layers.iter_mut().enumerate() {
            l.w.grad.add_assign(&mats[2 * i]);
            l.b.grad.add_assign(&mats[2 * i + 1]);
        }
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Adam step on all layers.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        for l in &mut self.layers {
            l.adam_step(lr, t, cfg);
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

/// Two adjacent `&mut` elements of a slice (the w/b gradient pair).
fn two_muts(mats: &mut [Mat], at: usize) -> (&mut Mat, &mut Mat) {
    let (a, b) = mats[at..at + 2].split_at_mut(1);
    (&mut a[0], &mut b[0])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_fits_a_nonlinear_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[2, 16, 16, 1], &mut rng);
        let cfg = AdamConfig::default();
        // y = x0² + sin(x1)
        let mut t = 0;
        for _ in 0..1500 {
            let x = Mat::randn(16, 2, 1.0, &mut rng);
            let target = Mat::from_vec(
                16,
                1,
                (0..16)
                    .map(|i| x.get(i, 0).powi(2) + x.get(i, 1).sin())
                    .collect(),
            );
            let (y, cache) = mlp.forward(&x);
            let (_, grad) = mse(&y, &target);
            mlp.zero_grad();
            mlp.backward(&cache, &grad);
            t += 1;
            mlp.adam_step(0.01, t, &cfg);
        }
        // Evaluate.
        let x = Mat::randn(64, 2, 1.0, &mut rng);
        let target: Vec<f32> = (0..64)
            .map(|i| x.get(i, 0).powi(2) + x.get(i, 1).sin())
            .collect();
        let y = mlp.infer(&x);
        let mse_val: f32 = y
            .data
            .iter()
            .zip(&target)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            / 64.0;
        assert!(mse_val < 0.1, "mse {mse_val}");
    }

    #[test]
    fn gradient_check_through_two_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(&[3, 5, 2], &mut rng);
        let x = Mat::randn(4, 3, 1.0, &mut rng);
        let target = Mat::randn(4, 2, 1.0, &mut rng);
        let (y, cache) = mlp.forward(&x);
        let (_, grad) = mse(&y, &target);
        mlp.zero_grad();
        let gx = mlp.backward(&cache, &grad);

        let loss_of = |mlp: &Mlp, x: &Mat| {
            let y = mlp.infer(x);
            mse(&y, &target).0
        };
        let eps = 1e-3;
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss_of(&mlp, &xp) - loss_of(&mlp, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data[idx]).abs() < 2e-2,
                "dX[{idx}] num {num} vs {}",
                gx.data[idx]
            );
        }
        // And a weight in the first layer.
        for idx in [0usize, 7] {
            let mut mp = mlp.clone();
            mp.layers[0].w.value.data[idx] += eps;
            let mut mm = mlp.clone();
            mm.layers[0].w.value.data[idx] -= eps;
            let num = (loss_of(&mp, &x) - loss_of(&mm, &x)) / (2.0 * eps);
            let ana = mlp.layers[0].w.grad.data[idx];
            assert!((num - ana).abs() < 2e-2, "dW[{idx}] num {num} vs {ana}");
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&[4, 8, 2], &mut rng);
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let (y1, _) = mlp.forward(&x);
        let y2 = mlp.infer(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    fn workspace_path_matches_wrapper_bitwise() {
        let mut rng = StdRng::seed_from_u64(7);
        let mut mlp = Mlp::new(&[4, 8, 3, 2], &mut rng);
        let x = Mat::randn(5, 4, 1.0, &mut rng);
        let g = Mat::randn(5, 2, 1.0, &mut rng);

        let (y_wrap, cache) = mlp.forward(&x);
        mlp.zero_grad();
        let gi_wrap = mlp.backward(&cache, &g);
        let wrap_grads: Vec<Mat> = mlp.params().iter().map(|p| p.grad.clone()).collect();

        let mut ws = MlpWs::default();
        mlp.forward_ws(&x, &mut ws);
        assert_eq!(*ws.out(), y_wrap);
        let mut grads: Vec<Mat> = mlp
            .grad_shapes()
            .iter()
            .map(|&(r, c)| Mat::zeros(r, c))
            .collect();
        let mut gi = Mat::default();
        let mut scratch = Workspace::new();
        mlp.backward_ws(&x, &ws, &g, &mut grads, Some(&mut gi), &mut scratch);
        assert_eq!(gi, gi_wrap);
        for (got, want) in grads.iter().zip(&wrap_grads) {
            assert_eq!(got, want);
        }
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_dim() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = Mlp::new(&[4], &mut rng);
    }
}
