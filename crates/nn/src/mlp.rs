//! Multi-layer perceptrons (ReLU hidden layers, linear output).

use crate::linear::{relu, relu_backward, Linear};
use crate::mat::Mat;
use crate::param::AdamConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// An MLP with ReLU after every layer except the last.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Mlp {
    /// Layers in order.
    pub layers: Vec<Linear>,
}

/// Forward-pass cache needed for backward.
#[derive(Debug, Clone)]
pub struct MlpCache {
    /// Input to each layer.
    inputs: Vec<Mat>,
    /// Pre-activation output of each hidden layer (for the ReLU mask).
    pre_acts: Vec<Mat>,
}

impl Mlp {
    /// Builds an MLP with the given layer widths, e.g. `[32, 16, 1]` for
    /// 32 → 16 → 1.
    ///
    /// # Panics
    ///
    /// Panics if fewer than two dims are given.
    pub fn new<R: Rng>(dims: &[usize], rng: &mut R) -> Mlp {
        assert!(dims.len() >= 2, "need at least input and output dims");
        let layers = dims
            .windows(2)
            .map(|w| Linear::new(w[0], w[1], rng))
            .collect();
        Mlp { layers }
    }

    /// Forward pass returning the output and a cache for backward.
    pub fn forward(&self, x: &Mat) -> (Mat, MlpCache) {
        let mut inputs = Vec::with_capacity(self.layers.len());
        let mut pre_acts = Vec::with_capacity(self.layers.len().saturating_sub(1));
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            inputs.push(cur.clone());
            let pre = layer.forward(&cur);
            if i + 1 < self.layers.len() {
                pre_acts.push(pre.clone());
                cur = relu(&pre);
            } else {
                cur = pre;
            }
        }
        (cur, MlpCache { inputs, pre_acts })
    }

    /// Inference-only forward (no cache).
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut cur = x.clone();
        for (i, layer) in self.layers.iter().enumerate() {
            let pre = layer.forward(&cur);
            cur = if i + 1 < self.layers.len() {
                relu(&pre)
            } else {
                pre
            };
        }
        cur
    }

    /// Backward pass: accumulates parameter gradients, returns the gradient
    /// w.r.t. the MLP input.
    pub fn backward(&mut self, cache: &MlpCache, grad_out: &Mat) -> Mat {
        let mut grad = grad_out.clone();
        for i in (0..self.layers.len()).rev() {
            if i + 1 < self.layers.len() {
                grad = relu_backward(&cache.pre_acts[i], &grad);
            }
            grad = self.layers[i].backward(&cache.inputs[i], &grad);
        }
        grad
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for l in &mut self.layers {
            l.zero_grad();
        }
    }

    /// Adam step on all layers.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        for l in &mut self.layers {
            l.adam_step(lr, t, cfg);
        }
    }

    /// Total scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.layers.iter().map(|l| l.param_count()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn mlp_fits_a_nonlinear_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut mlp = Mlp::new(&[2, 16, 16, 1], &mut rng);
        let cfg = AdamConfig::default();
        // y = x0² + sin(x1)
        let mut t = 0;
        for _ in 0..1500 {
            let x = Mat::randn(16, 2, 1.0, &mut rng);
            let target = Mat::from_vec(
                16,
                1,
                (0..16)
                    .map(|i| x.get(i, 0).powi(2) + x.get(i, 1).sin())
                    .collect(),
            );
            let (y, cache) = mlp.forward(&x);
            let (_, grad) = mse(&y, &target);
            mlp.zero_grad();
            mlp.backward(&cache, &grad);
            t += 1;
            mlp.adam_step(0.01, t, &cfg);
        }
        // Evaluate.
        let x = Mat::randn(64, 2, 1.0, &mut rng);
        let target: Vec<f32> = (0..64)
            .map(|i| x.get(i, 0).powi(2) + x.get(i, 1).sin())
            .collect();
        let y = mlp.infer(&x);
        let mse_val: f32 = y
            .data
            .iter()
            .zip(&target)
            .map(|(a, b)| (a - b).powi(2))
            .sum::<f32>()
            / 64.0;
        assert!(mse_val < 0.1, "mse {mse_val}");
    }

    #[test]
    fn gradient_check_through_two_layers() {
        let mut rng = StdRng::seed_from_u64(4);
        let mut mlp = Mlp::new(&[3, 5, 2], &mut rng);
        let x = Mat::randn(4, 3, 1.0, &mut rng);
        let target = Mat::randn(4, 2, 1.0, &mut rng);
        let (y, cache) = mlp.forward(&x);
        let (_, grad) = mse(&y, &target);
        mlp.zero_grad();
        let gx = mlp.backward(&cache, &grad);

        let loss_of = |mlp: &Mlp, x: &Mat| {
            let y = mlp.infer(x);
            mse(&y, &target).0
        };
        let eps = 1e-3;
        for idx in [0usize, 5, 11] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss_of(&mlp, &xp) - loss_of(&mlp, &xm)) / (2.0 * eps);
            assert!(
                (num - gx.data[idx]).abs() < 2e-2,
                "dX[{idx}] num {num} vs {}",
                gx.data[idx]
            );
        }
        // And a weight in the first layer.
        for idx in [0usize, 7] {
            let mut mp = mlp.clone();
            mp.layers[0].w.value.data[idx] += eps;
            let mut mm = mlp.clone();
            mm.layers[0].w.value.data[idx] -= eps;
            let num = (loss_of(&mp, &x) - loss_of(&mm, &x)) / (2.0 * eps);
            let ana = mlp.layers[0].w.grad.data[idx];
            assert!((num - ana).abs() < 2e-2, "dW[{idx}] num {num} vs {ana}");
        }
    }

    #[test]
    fn infer_matches_forward() {
        let mut rng = StdRng::seed_from_u64(5);
        let mlp = Mlp::new(&[4, 8, 2], &mut rng);
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let (y1, _) = mlp.forward(&x);
        let y2 = mlp.infer(&x);
        assert_eq!(y1, y2);
    }

    #[test]
    #[should_panic(expected = "at least input and output")]
    fn rejects_single_dim() {
        let mut rng = StdRng::seed_from_u64(6);
        let _ = Mlp::new(&[4], &mut rng);
    }
}
