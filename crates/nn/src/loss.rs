//! Loss functions with gradients.
//!
//! LOAM uses mean squared error for the cost-prediction loss `L_c` and
//! cross-entropy for the domain-classification loss `L_d` (Equation 1).

use crate::linear::softmax_rows_into;
use crate::mat::Mat;

/// Mean squared error over all elements; returns `(loss, grad)` where
/// `grad = 2 (pred − target) / n`.
pub fn mse(pred: &Mat, target: &Mat) -> (f32, Mat) {
    let mut grad = Mat::default();
    let loss = mse_into(pred, target, &mut grad);
    (loss, grad)
}

/// [`mse`] writing the gradient into a reusable buffer.
pub fn mse_into(pred: &Mat, target: &Mat, grad: &mut Mat) -> f32 {
    assert_eq!(pred.data.len(), target.data.len());
    let n = pred.data.len().max(1) as f32;
    grad.resize_in_place(pred.rows, pred.cols);
    let mut loss = 0.0;
    for i in 0..pred.data.len() {
        let d = pred.data[i] - target.data[i];
        loss += d * d;
        grad.data[i] = 2.0 * d / n;
    }
    loss / n
}

/// Softmax cross-entropy with integer class labels; returns `(loss, grad)`
/// where `grad` is w.r.t. the logits (already divided by batch size).
pub fn cross_entropy_logits(logits: &Mat, labels: &[usize]) -> (f32, Mat) {
    let mut grad = Mat::default();
    let loss = cross_entropy_logits_into(logits, labels, &mut grad);
    (loss, grad)
}

/// [`cross_entropy_logits`] writing the gradient into a reusable buffer
/// (the softmax probabilities are computed in place inside it).
pub fn cross_entropy_logits_into(logits: &Mat, labels: &[usize], grad: &mut Mat) -> f32 {
    assert_eq!(logits.rows, labels.len());
    softmax_rows_into(logits, grad);
    let n = labels.len().max(1) as f32;
    let mut loss = 0.0;
    for (r, &y) in labels.iter().enumerate() {
        let p = grad.get(r, y);
        loss -= p.max(1e-9).ln();
        grad.set(r, y, p - 1.0);
    }
    grad.scale(1.0 / n);
    loss / n
}

/// Binary classification accuracy for 2-logit outputs.
pub fn accuracy(logits: &Mat, labels: &[usize]) -> f64 {
    if labels.is_empty() {
        return 0.0;
    }
    let correct = labels
        .iter()
        .enumerate()
        .filter(|(r, &y)| {
            let row = logits.row(*r);
            let pred = if row[1] > row[0] { 1 } else { 0 };
            pred == y
        })
        .count();
    correct as f64 / labels.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mse_zero_on_exact_match() {
        let a = Mat::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let (l, g) = mse(&a, &a);
        assert_eq!(l, 0.0);
        assert!(g.data.iter().all(|&x| x == 0.0));
    }

    #[test]
    fn mse_gradient_matches_finite_difference() {
        let pred = Mat::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        let target = Mat::from_vec(1, 3, vec![0.0, 1.0, 0.5]);
        let (_, g) = mse(&pred, &target);
        let eps = 1e-3;
        for i in 0..3 {
            let mut p = pred.clone();
            p.data[i] += eps;
            let (lp, _) = mse(&p, &target);
            p.data[i] -= 2.0 * eps;
            let (lm, _) = mse(&p, &target);
            let num = (lp - lm) / (2.0 * eps);
            assert!((num - g.data[i]).abs() < 1e-3, "i={i}");
        }
    }

    #[test]
    fn cross_entropy_prefers_correct_class() {
        let good = Mat::from_vec(1, 2, vec![-3.0, 3.0]);
        let bad = Mat::from_vec(1, 2, vec![3.0, -3.0]);
        let (lg, _) = cross_entropy_logits(&good, &[1]);
        let (lb, _) = cross_entropy_logits(&bad, &[1]);
        assert!(lg < 0.01);
        assert!(lb > 1.0);
    }

    #[test]
    fn cross_entropy_gradient_matches_finite_difference() {
        let logits = Mat::from_vec(2, 2, vec![0.3, -0.7, 1.2, 0.1]);
        let labels = [1usize, 0];
        let (_, g) = cross_entropy_logits(&logits, &labels);
        let eps = 1e-3;
        for i in 0..4 {
            let mut l = logits.clone();
            l.data[i] += eps;
            let (lp, _) = cross_entropy_logits(&l, &labels);
            l.data[i] -= 2.0 * eps;
            let (lm, _) = cross_entropy_logits(&l, &labels);
            let num = (lp - lm) / (2.0 * eps);
            assert!(
                (num - g.data[i]).abs() < 1e-3,
                "i={i}: {num} vs {}",
                g.data[i]
            );
        }
    }

    #[test]
    fn accuracy_counts_argmax_matches() {
        let logits = Mat::from_vec(3, 2, vec![1.0, 0.0, 0.0, 1.0, 2.0, -1.0]);
        assert!((accuracy(&logits, &[0, 1, 0]) - 1.0).abs() < 1e-12);
        assert!((accuracy(&logits, &[1, 1, 0]) - 2.0 / 3.0).abs() < 1e-12);
    }
}
