//! A small single-head transformer encoder (baseline cost model, after
//! QueryFormer-style plan transformers).
//!
//! Nodes are treated as a sequence (pre-order), passed through one
//! self-attention block with a residual connection and a two-layer
//! feed-forward, mean-pooled, and projected to the embedding. The
//! workspace (`_ws`) pair reuses caller-provided buffers; the legacy
//! `forward`/`backward` pair delegates to it.

use crate::linear::{softmax_rows_into, Linear};
use crate::mat::{run_row_blocked, Mat};
use crate::param::AdamConfig;
use crate::workspace::Workspace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Single-head transformer encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transformer {
    in_proj: Linear,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    ff1: Linear,
    ff2: Linear,
    out_proj: Linear,
    d: usize,
}

/// Reusable forward buffers for the workspace pair. Activations are stored
/// post-ReLU (`h0`, `ff_hidden`); the backward pass masks on the outputs,
/// which is equivalent to masking on the pre-activations since
/// `h = max(pre, 0)`.
#[derive(Debug, Clone, Default)]
pub struct TransformerWs {
    h0: Mat,
    q: Mat,
    k: Mat,
    v: Mat,
    attn: Mat,
    h1: Mat,
    ff_hidden: Mat,
    h2: Mat,
    pooled: Mat,
    emb: Mat,
    scores: Mat,
    mix: Mat,
}

impl TransformerWs {
    /// The embedding produced by the last `forward_ws` call.
    pub fn emb(&self) -> &Mat {
        &self.emb
    }
}

/// Backward cache.
#[derive(Debug, Clone)]
pub struct TransformerCache {
    x: Mat,
    ws: TransformerWs,
}

impl Transformer {
    /// Builds an encoder with model width `d` and embedding width `emb`.
    pub fn new<R: Rng>(in_dim: usize, d: usize, emb_dim: usize, rng: &mut R) -> Self {
        Transformer {
            in_proj: Linear::new(in_dim, d, rng),
            wq: Linear::new(d, d, rng),
            wk: Linear::new(d, d, rng),
            wv: Linear::new(d, d, rng),
            ff1: Linear::new(d, 2 * d, rng),
            ff2: Linear::new(2 * d, d, rng),
            out_proj: Linear::new(d, emb_dim, rng),
            d,
        }
    }

    /// Encodes a node sequence (`x`: nodes×in) into a 1×emb embedding.
    ///
    /// Thin allocating wrapper over [`Transformer::forward_ws`].
    pub fn forward(&self, x: &Mat) -> (Mat, TransformerCache) {
        let mut ws = TransformerWs::default();
        self.forward_ws(x, &mut ws);
        let emb = ws.emb.clone();
        (emb, TransformerCache { x: x.clone(), ws })
    }

    /// Allocation-free encoding into the workspace's reusable buffers.
    pub fn forward_ws(&self, x: &Mat, ws: &mut TransformerWs) {
        let TransformerWs {
            h0,
            q,
            k,
            v,
            attn,
            h1,
            ff_hidden,
            h2,
            pooled,
            emb,
            scores,
            mix,
        } = ws;
        self.in_proj.forward_relu_into(x, h0);
        self.wq.forward_into(h0, q);
        self.wk.forward_into(h0, k);
        self.wv.forward_into(h0, v);
        let scale = 1.0 / (self.d as f32).sqrt();
        q.matmul_nt_into(k, scores);
        scores.scale(scale);
        softmax_rows_into(scores, attn);
        attn.matmul_into(v, mix);
        // Residual.
        h1.copy_from(h0);
        h1.add_assign(mix);
        // Feed-forward with residual (`mix` is reused for the ff output).
        self.ff1.forward_relu_into(h1, ff_hidden);
        self.ff2.forward_into(ff_hidden, mix);
        h2.copy_from(h1);
        h2.add_assign(mix);
        // Mean pool.
        pooled.resize_in_place(1, h2.cols);
        pooled.fill(0.0);
        for r in 0..h2.rows {
            for c in 0..h2.cols {
                pooled.data[c] += h2.get(r, c) / h2.rows as f32;
            }
        }
        self.out_proj.forward_into(pooled, emb);
    }

    /// Inference-only encoding.
    pub fn infer(&self, x: &Mat) -> Mat {
        let mut ws = TransformerWs::default();
        self.forward_ws(x, &mut ws);
        ws.emb
    }

    /// Backward from an embedding gradient; accumulates parameter grads.
    ///
    /// Thin allocating wrapper over [`Transformer::backward_ws`].
    pub fn backward(&mut self, c: &TransformerCache, grad_emb: &Mat) {
        let mut scratch = Workspace::new();
        self.backward_ws(&c.x, &c.ws, grad_emb, &mut scratch);
    }

    /// Allocation-free backward; every intermediate lives in `scratch`.
    pub fn backward_ws(
        &mut self,
        x: &Mat,
        ws: &TransformerWs,
        grad_emb: &Mat,
        scratch: &mut Workspace,
    ) {
        let rows = ws.h2.rows;
        let n = rows as f32;
        let d = self.d;
        let scale = 1.0 / (d as f32).sqrt();
        scratch.with(1, ws.pooled.cols, |scratch, grad_pooled| {
            Linear::backward_into(
                &self.out_proj.w.value,
                &ws.pooled,
                grad_emb,
                &mut self.out_proj.w.grad,
                &mut self.out_proj.b.grad,
                Some(grad_pooled),
                scratch,
            );
            scratch.with(rows, ws.h2.cols, |scratch, grad_h2| {
                for r in 0..rows {
                    for col in 0..ws.h2.cols {
                        grad_h2.set(r, col, grad_pooled.data[col] / n);
                    }
                }
                // h2 = h1 + ff2(relu(ff1(h1)))
                scratch.with(rows, 2 * d, |scratch, gffh| {
                    Linear::backward_into(
                        &self.ff2.w.value,
                        &ws.ff_hidden,
                        grad_h2,
                        &mut self.ff2.w.grad,
                        &mut self.ff2.b.grad,
                        Some(gffh),
                        scratch,
                    );
                    scratch.with(rows, d, |scratch, grad_h1| {
                        Linear::backward_relu_into(
                            &self.ff1.w.value,
                            &ws.h1,
                            &ws.ff_hidden,
                            gffh,
                            &mut self.ff1.w.grad,
                            &mut self.ff1.b.grad,
                            Some(grad_h1),
                            scratch,
                        );
                        grad_h1.add_assign(grad_h2); // residual path

                        // h1 = h0 + attn @ v
                        scratch.with(rows, d, |scratch, grad_v| {
                            // dV = attnᵀ @ grad_att_out (= grad_h1)
                            ws.attn.matmul_tn_into(grad_h1, grad_v);
                            scratch.with(rows, rows, |scratch, grad_scores| {
                                scratch.with(rows, rows, |scratch, grad_attn| {
                                    // dAttn = grad_att_out @ vᵀ
                                    grad_h1.matmul_nt_into(&ws.v, grad_attn);
                                    // Softmax backward per row:
                                    // ds = a ⊙ (dA − Σ(dA ⊙ a)). Rows are
                                    // independent, so row blocks fan out
                                    // across the pool for long sequences
                                    // with bit-identical results.
                                    let cols = grad_attn.cols;
                                    let attn = &ws.attn;
                                    let ga = &*grad_attn;
                                    run_row_blocked(grad_scores, rows * cols * 3, |r0, block| {
                                        for (bi, srow) in block.chunks_mut(cols).enumerate() {
                                            let a = attn.row(r0 + bi);
                                            let da = ga.row(r0 + bi);
                                            let dot: f32 =
                                                a.iter().zip(da).map(|(x, y)| x * y).sum();
                                            for (col, s) in srow.iter_mut().enumerate() {
                                                *s = a[col] * (da[col] - dot);
                                            }
                                        }
                                    });
                                    let _ = scratch;
                                });
                                grad_scores.scale(scale);
                                // scores = q kᵀ ⇒ dq = ds @ k ; dk = dsᵀ @ q
                                scratch.with(rows, d, |scratch, grad_qk| {
                                    scratch.with(rows, d, |scratch, grad_h0| {
                                        grad_scores.matmul_into(&ws.k, grad_qk);
                                        Linear::backward_into(
                                            &self.wq.w.value,
                                            &ws.h0,
                                            grad_qk,
                                            &mut self.wq.w.grad,
                                            &mut self.wq.b.grad,
                                            Some(grad_h0),
                                            scratch,
                                        );
                                        grad_scores.matmul_tn_into(&ws.q, grad_qk);
                                        scratch.with(rows, d, |scratch, tmp| {
                                            Linear::backward_into(
                                                &self.wk.w.value,
                                                &ws.h0,
                                                grad_qk,
                                                &mut self.wk.w.grad,
                                                &mut self.wk.b.grad,
                                                Some(tmp),
                                                scratch,
                                            );
                                            grad_h0.add_assign(tmp);
                                            Linear::backward_into(
                                                &self.wv.w.value,
                                                &ws.h0,
                                                grad_v,
                                                &mut self.wv.w.grad,
                                                &mut self.wv.b.grad,
                                                Some(tmp),
                                                scratch,
                                            );
                                            grad_h0.add_assign(tmp);
                                        });
                                        grad_h0.add_assign(grad_h1); // residual path
                                        Linear::backward_relu_into(
                                            &self.in_proj.w.value,
                                            x,
                                            &ws.h0,
                                            grad_h0,
                                            &mut self.in_proj.w.grad,
                                            &mut self.in_proj.b.grad,
                                            None,
                                            scratch,
                                        );
                                    });
                                });
                            });
                        });
                    });
                });
            });
        });
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for l in [
            &mut self.in_proj,
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.ff1,
            &mut self.ff2,
            &mut self.out_proj,
        ] {
            l.zero_grad();
        }
    }

    /// Adam step on all parameters.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        for l in [
            &mut self.in_proj,
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.ff1,
            &mut self.ff2,
            &mut self.out_proj,
        ] {
            l.adam_step(lr, t, cfg);
        }
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        [
            &self.in_proj,
            &self.wq,
            &self.wk,
            &self.wv,
            &self.ff1,
            &self.ff2,
            &self.out_proj,
        ]
        .iter()
        .map(|l| l.param_count())
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let tr = Transformer::new(5, 8, 3, &mut rng);
        let x = Mat::randn(4, 5, 1.0, &mut rng);
        let (emb, _) = tr.forward(&x);
        assert_eq!((emb.rows, emb.cols), (1, 3));
    }

    #[test]
    fn workspace_forward_reuses_buffers_and_matches_wrapper() {
        let mut rng = StdRng::seed_from_u64(7);
        let tr = Transformer::new(5, 8, 3, &mut rng);
        let mut ws = TransformerWs::default();
        // Larger input first so the second call reuses dirty, oversized
        // buffers.
        let big = Mat::randn(6, 5, 1.0, &mut rng);
        self_check(&tr, &big, &mut ws);
        let small = Mat::randn(2, 5, 1.0, &mut rng);
        self_check(&tr, &small, &mut ws);

        fn self_check(tr: &Transformer, x: &Mat, ws: &mut TransformerWs) {
            let (emb, _) = tr.forward(x);
            tr.forward_ws(x, ws);
            assert_eq!(emb.data, ws.emb().data);
        }
    }

    #[test]
    fn gradient_check_through_attention() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tr = Transformer::new(4, 6, 2, &mut rng);
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let target = Mat::randn(1, 2, 1.0, &mut rng);
        let (emb, cache) = tr.forward(&x);
        let (_, grad) = mse(&emb, &target);
        tr.zero_grad();
        tr.backward(&cache, &grad);

        let loss_of = |tr: &Transformer| mse(&tr.infer(&x), &target).0;
        let eps = 1e-2;
        for idx in [0usize, 3] {
            // Query projection weights exercise the softmax backward.
            let mut tp = tr.clone();
            tp.wq.w.value.data[idx] += eps;
            let mut tm = tr.clone();
            tm.wq.w.value.data[idx] -= eps;
            let num = (loss_of(&tp) - loss_of(&tm)) / (2.0 * eps);
            let ana = tr.wq.w.grad.data[idx];
            assert!((num - ana).abs() < 5e-2, "wq[{idx}] num {num} vs ana {ana}");
        }
        for idx in [0usize, 7] {
            let mut tp = tr.clone();
            tp.in_proj.w.value.data[idx] += eps;
            let mut tm = tr.clone();
            tm.in_proj.w.value.data[idx] -= eps;
            let num = (loss_of(&tp) - loss_of(&tm)) / (2.0 * eps);
            let ana = tr.in_proj.w.grad.data[idx];
            assert!(
                (num - ana).abs() < 5e-2,
                "in_proj[{idx}] num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn transformer_fits_sequence_sum() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tr = Transformer::new(2, 8, 4, &mut rng);
        let mut head = Linear::new(4, 1, &mut rng);
        let cfg = AdamConfig::default();
        let mut t = 0;
        for _ in 0..800 {
            let n = rng.gen_range(3..6usize);
            let x = Mat::randn(n, 2, 1.0, &mut rng);
            let label: f32 = (0..n).map(|i| x.get(i, 0)).sum();
            let (emb, cache) = tr.forward(&x);
            let pred = head.forward(&emb);
            let (_, grad) = mse(&pred, &Mat::from_vec(1, 1, vec![label]));
            tr.zero_grad();
            head.zero_grad();
            let gemb = head.backward(&emb, &grad);
            tr.backward(&cache, &gemb);
            t += 1;
            tr.adam_step(0.005, t, &cfg);
            head.adam_step(0.005, t, &cfg);
        }
        let mut err = 0.0;
        for _ in 0..40 {
            let n = rng.gen_range(3..6usize);
            let x = Mat::randn(n, 2, 1.0, &mut rng);
            let label: f32 = (0..n).map(|i| x.get(i, 0)).sum();
            let pred = head.forward(&tr.infer(&x)).data[0];
            err += (pred - label).abs();
        }
        err /= 40.0;
        assert!(err < 1.0, "mean abs err {err}");
    }
}
