//! A small single-head transformer encoder (baseline cost model, after
//! QueryFormer-style plan transformers).
//!
//! Nodes are treated as a sequence (pre-order), passed through one
//! self-attention block with a residual connection and a two-layer
//! feed-forward, mean-pooled, and projected to the embedding.

use crate::linear::{relu, relu_backward, softmax_rows, Linear};
use crate::mat::Mat;
use crate::param::AdamConfig;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Single-head transformer encoder.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Transformer {
    in_proj: Linear,
    wq: Linear,
    wk: Linear,
    wv: Linear,
    ff1: Linear,
    ff2: Linear,
    out_proj: Linear,
    d: usize,
}

/// Backward cache.
#[derive(Debug, Clone)]
pub struct TransformerCache {
    x: Mat,
    pre0: Mat,
    h0: Mat,
    q: Mat,
    k: Mat,
    v: Mat,
    attn: Mat,
    h1: Mat,
    pre_ff: Mat,
    ff_hidden: Mat,
    h2: Mat,
    pooled: Mat,
}

impl Transformer {
    /// Builds an encoder with model width `d` and embedding width `emb`.
    pub fn new<R: Rng>(in_dim: usize, d: usize, emb_dim: usize, rng: &mut R) -> Self {
        Transformer {
            in_proj: Linear::new(in_dim, d, rng),
            wq: Linear::new(d, d, rng),
            wk: Linear::new(d, d, rng),
            wv: Linear::new(d, d, rng),
            ff1: Linear::new(d, 2 * d, rng),
            ff2: Linear::new(2 * d, d, rng),
            out_proj: Linear::new(d, emb_dim, rng),
            d,
        }
    }

    /// Encodes a node sequence (`x`: nodes×in) into a 1×emb embedding.
    pub fn forward(&self, x: &Mat) -> (Mat, TransformerCache) {
        let pre0 = self.in_proj.forward(x);
        let h0 = relu(&pre0);
        let q = self.wq.forward(&h0);
        let k = self.wk.forward(&h0);
        let v = self.wv.forward(&h0);
        let scale = 1.0 / (self.d as f32).sqrt();
        let mut scores = q.matmul_nt(&k);
        scores.scale(scale);
        let attn = softmax_rows(&scores);
        let att_out = attn.matmul(&v);
        // Residual.
        let mut h1 = h0.clone();
        h1.add_assign(&att_out);
        // Feed-forward with residual.
        let pre_ff = self.ff1.forward(&h1);
        let ff_hidden = relu(&pre_ff);
        let ff_out = self.ff2.forward(&ff_hidden);
        let mut h2 = h1.clone();
        h2.add_assign(&ff_out);
        // Mean pool.
        let mut pooled = Mat::zeros(1, h2.cols);
        for r in 0..h2.rows {
            for c in 0..h2.cols {
                pooled.data[c] += h2.get(r, c) / h2.rows as f32;
            }
        }
        let emb = self.out_proj.forward(&pooled);
        (
            emb,
            TransformerCache {
                x: x.clone(),
                pre0,
                h0,
                q,
                k,
                v,
                attn,
                h1,
                pre_ff,
                ff_hidden,
                h2,
                pooled,
            },
        )
    }

    /// Inference-only encoding.
    pub fn infer(&self, x: &Mat) -> Mat {
        self.forward(x).0
    }

    /// Backward from an embedding gradient; accumulates parameter grads.
    pub fn backward(&mut self, c: &TransformerCache, grad_emb: &Mat) {
        let grad_pooled = self.out_proj.backward(&c.pooled, grad_emb);
        let n = c.h2.rows as f32;
        let mut grad_h2 = Mat::zeros(c.h2.rows, c.h2.cols);
        for r in 0..c.h2.rows {
            for col in 0..c.h2.cols {
                grad_h2.set(r, col, grad_pooled.data[col] / n);
            }
        }
        // h2 = h1 + ff2(relu(ff1(h1)))
        let grad_ff_out = grad_h2.clone();
        let grad_ff_hidden = self.ff2.backward(&c.ff_hidden, &grad_ff_out);
        let grad_pre_ff = relu_backward(&c.pre_ff, &grad_ff_hidden);
        let mut grad_h1 = self.ff1.backward(&c.h1, &grad_pre_ff);
        grad_h1.add_assign(&grad_h2); // residual path

        // h1 = h0 + attn @ v
        let grad_att_out = grad_h1.clone();
        // dV = attnᵀ @ grad_att_out
        let grad_v = c.attn.matmul_tn(&grad_att_out);
        // dAttn = grad_att_out @ vᵀ
        let grad_attn = grad_att_out.matmul_nt(&c.v);
        // Softmax backward per row: ds = a ⊙ (dA − Σ(dA ⊙ a)). Rows are
        // independent, so row blocks fan out across the pool for long
        // sequences with bit-identical results.
        let mut grad_scores = Mat::zeros(grad_attn.rows, grad_attn.cols);
        let cols = grad_attn.cols;
        let softmax_back_block = |r0: usize, block: &mut [f32]| {
            for (bi, srow) in block.chunks_mut(cols).enumerate() {
                let a = c.attn.row(r0 + bi);
                let da = grad_attn.row(r0 + bi);
                let dot: f32 = a.iter().zip(da).map(|(x, y)| x * y).sum();
                for (col, s) in srow.iter_mut().enumerate() {
                    *s = a[col] * (da[col] - dot);
                }
            }
        };
        let pool = mcsim_par::ThreadPool::global();
        let work = grad_attn.rows * cols * 3;
        if pool.threads() > 1
            && grad_attn.rows > 1
            && cols > 0
            && work >= mcsim_par::min_parallel_work()
        {
            let block_rows = grad_attn.rows.div_ceil(pool.threads() * 2).max(1);
            pool.parallel_for_chunks_mut(&mut grad_scores.data, block_rows * cols, |ci, block| {
                softmax_back_block(ci * block_rows, block)
            });
        } else if cols > 0 {
            softmax_back_block(0, &mut grad_scores.data);
        }
        let scale = 1.0 / (self.d as f32).sqrt();
        grad_scores.scale(scale);
        // scores = q kᵀ ⇒ dq = ds @ k ; dk = dsᵀ @ q
        let grad_q = grad_scores.matmul(&c.k);
        let grad_k = grad_scores.matmul_tn(&c.q);

        let mut grad_h0 = self.wq.backward(&c.h0, &grad_q);
        grad_h0.add_assign(&self.wk.backward(&c.h0, &grad_k));
        grad_h0.add_assign(&self.wv.backward(&c.h0, &grad_v));
        grad_h0.add_assign(&grad_h1); // residual path

        let grad_pre0 = relu_backward(&c.pre0, &grad_h0);
        let _ = self.in_proj.backward(&c.x, &grad_pre0);
    }

    /// Clears all gradients.
    pub fn zero_grad(&mut self) {
        for l in [
            &mut self.in_proj,
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.ff1,
            &mut self.ff2,
            &mut self.out_proj,
        ] {
            l.zero_grad();
        }
    }

    /// Adam step on all parameters.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        for l in [
            &mut self.in_proj,
            &mut self.wq,
            &mut self.wk,
            &mut self.wv,
            &mut self.ff1,
            &mut self.ff2,
            &mut self.out_proj,
        ] {
            l.adam_step(lr, t, cfg);
        }
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        [
            &self.in_proj,
            &self.wq,
            &self.wk,
            &self.wv,
            &self.ff1,
            &self.ff2,
            &self.out_proj,
        ]
        .iter()
        .map(|l| l.param_count())
        .sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn forward_shape() {
        let mut rng = StdRng::seed_from_u64(0);
        let tr = Transformer::new(5, 8, 3, &mut rng);
        let x = Mat::randn(4, 5, 1.0, &mut rng);
        let (emb, _) = tr.forward(&x);
        assert_eq!((emb.rows, emb.cols), (1, 3));
    }

    #[test]
    fn gradient_check_through_attention() {
        let mut rng = StdRng::seed_from_u64(1);
        let mut tr = Transformer::new(4, 6, 2, &mut rng);
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let target = Mat::randn(1, 2, 1.0, &mut rng);
        let (emb, cache) = tr.forward(&x);
        let (_, grad) = mse(&emb, &target);
        tr.zero_grad();
        tr.backward(&cache, &grad);

        let loss_of = |tr: &Transformer| mse(&tr.infer(&x), &target).0;
        let eps = 1e-2;
        for idx in [0usize, 3] {
            // Query projection weights exercise the softmax backward.
            let mut tp = tr.clone();
            tp.wq.w.value.data[idx] += eps;
            let mut tm = tr.clone();
            tm.wq.w.value.data[idx] -= eps;
            let num = (loss_of(&tp) - loss_of(&tm)) / (2.0 * eps);
            let ana = tr.wq.w.grad.data[idx];
            assert!((num - ana).abs() < 5e-2, "wq[{idx}] num {num} vs ana {ana}");
        }
        for idx in [0usize, 7] {
            let mut tp = tr.clone();
            tp.in_proj.w.value.data[idx] += eps;
            let mut tm = tr.clone();
            tm.in_proj.w.value.data[idx] -= eps;
            let num = (loss_of(&tp) - loss_of(&tm)) / (2.0 * eps);
            let ana = tr.in_proj.w.grad.data[idx];
            assert!(
                (num - ana).abs() < 5e-2,
                "in_proj[{idx}] num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn transformer_fits_sequence_sum() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut tr = Transformer::new(2, 8, 4, &mut rng);
        let mut head = Linear::new(4, 1, &mut rng);
        let cfg = AdamConfig::default();
        let mut t = 0;
        for _ in 0..800 {
            let n = rng.gen_range(3..6usize);
            let x = Mat::randn(n, 2, 1.0, &mut rng);
            let label: f32 = (0..n).map(|i| x.get(i, 0)).sum();
            let (emb, cache) = tr.forward(&x);
            let pred = head.forward(&emb);
            let (_, grad) = mse(&pred, &Mat::from_vec(1, 1, vec![label]));
            tr.zero_grad();
            head.zero_grad();
            let gemb = head.backward(&emb, &grad);
            tr.backward(&cache, &gemb);
            t += 1;
            tr.adam_step(0.005, t, &cfg);
            head.adam_step(0.005, t, &cfg);
        }
        let mut err = 0.0;
        for _ in 0..40 {
            let n = rng.gen_range(3..6usize);
            let x = Mat::randn(n, 2, 1.0, &mut rng);
            let label: f32 = (0..n).map(|i| x.get(i, 0)).sum();
            let pred = head.forward(&tr.infer(&x)).data[0];
            err += (pred - label).abs();
        }
        err /= 40.0;
        assert!(err < 1.0, "mean abs err {err}");
    }
}
