//! Graph Convolutional Network encoder (baseline cost model, after
//! Kipf & Welling / the zero-shot cost model of Hilprecht & Binnig).
//!
//! Plans are viewed as undirected graphs (tree edges + self loops); each
//! layer aggregates mean-normalized neighbor features before a linear map
//! and ReLU, and the node representations are mean-pooled into a plan
//! embedding.

use crate::linear::{relu, relu_backward, Linear};
use crate::mat::Mat;
use crate::param::AdamConfig;
use crate::tcn::TreeStructure;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Adjacency as neighbor lists including the self loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `neighbors[i]` contains `i` itself plus every adjacent node.
    pub neighbors: Vec<Vec<usize>>,
}

impl Graph {
    /// Builds the undirected graph (with self loops) of a binary tree.
    pub fn from_tree(tree: &TreeStructure) -> Graph {
        let n = tree.len();
        let mut neighbors: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        for i in 0..n {
            for child in [tree.left[i], tree.right[i]].into_iter().flatten() {
                neighbors[i].push(child);
                neighbors[child].push(i);
            }
        }
        Graph { neighbors }
    }

    /// Mean aggregation `agg[i] = mean_{j ∈ N(i)} x[j]`.
    fn aggregate(&self, x: &Mat) -> Mat {
        let mut out = Mat::zeros(x.rows, x.cols);
        for (i, ns) in self.neighbors.iter().enumerate() {
            let inv = 1.0 / ns.len() as f32;
            for &j in ns {
                for c in 0..x.cols {
                    out.data[i * x.cols + c] += x.data[j * x.cols + c] * inv;
                }
            }
        }
        out
    }

    /// Transpose of the aggregation (for backward): scatter grad back.
    fn aggregate_backward(&self, grad: &Mat) -> Mat {
        let mut out = Mat::zeros(grad.rows, grad.cols);
        for (i, ns) in self.neighbors.iter().enumerate() {
            let inv = 1.0 / ns.len() as f32;
            for &j in ns {
                for c in 0..grad.cols {
                    out.data[j * grad.cols + c] += grad.data[i * grad.cols + c] * inv;
                }
            }
        }
        out
    }
}

/// One GCN layer: `h = relu(Agg(x) Wᵀ + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnLayer {
    lin: Linear,
}

/// Backward cache for one GCN layer.
#[derive(Debug, Clone)]
pub struct GcnLayerCache {
    agg: Mat,
    pre: Mat,
}

impl GcnLayer {
    /// He-initialized layer.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GcnLayer {
            lin: Linear::new(in_dim, out_dim, rng),
        }
    }

    /// Forward pass.
    pub fn forward(&self, x: &Mat, g: &Graph) -> (Mat, GcnLayerCache) {
        let agg = g.aggregate(x);
        let pre = self.lin.forward(&agg);
        (relu(&pre), GcnLayerCache { agg, pre })
    }

    /// Backward pass.
    pub fn backward(&mut self, cache: &GcnLayerCache, g: &Graph, grad_out: &Mat) -> Mat {
        let gpre = relu_backward(&cache.pre, grad_out);
        let gagg = self.lin.backward(&cache.agg, &gpre);
        g.aggregate_backward(&gagg)
    }
}

/// A two-layer GCN encoder with mean pooling and a projection head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gcn {
    l1: GcnLayer,
    l2: GcnLayer,
    proj: Linear,
}

/// Backward cache for the full encoder.
#[derive(Debug, Clone)]
pub struct GcnCache {
    c1: GcnLayerCache,
    h1: Mat,
    c2: GcnLayerCache,
    h2: Mat,
    pooled: Mat,
}

impl Gcn {
    /// Builds `in → hidden → hidden2 → emb`.
    pub fn new<R: Rng>(
        in_dim: usize,
        hidden1: usize,
        hidden2: usize,
        emb_dim: usize,
        rng: &mut R,
    ) -> Gcn {
        Gcn {
            l1: GcnLayer::new(in_dim, hidden1, rng),
            l2: GcnLayer::new(hidden1, hidden2, rng),
            proj: Linear::new(hidden2, emb_dim, rng),
        }
    }

    /// Encodes a plan graph into a 1×emb embedding.
    pub fn forward(&self, x: &Mat, g: &Graph) -> (Mat, GcnCache) {
        let (h1, c1) = self.l1.forward(x, g);
        let (h2, c2) = self.l2.forward(&h1, g);
        // Mean pooling over nodes.
        let mut pooled = Mat::zeros(1, h2.cols);
        for r in 0..h2.rows {
            for c in 0..h2.cols {
                pooled.data[c] += h2.get(r, c) / h2.rows as f32;
            }
        }
        let emb = self.proj.forward(&pooled);
        (
            emb,
            GcnCache {
                c1,
                h1,
                c2,
                h2,
                pooled,
            },
        )
    }

    /// Inference-only encoding.
    pub fn infer(&self, x: &Mat, g: &Graph) -> Mat {
        self.forward(x, g).0
    }

    /// Backward from an embedding gradient.
    pub fn backward(&mut self, cache: &GcnCache, g: &Graph, grad_emb: &Mat) {
        let grad_pooled = self.proj.backward(&cache.pooled, grad_emb);
        let n = cache.h2.rows as f32;
        let mut grad_h2 = Mat::zeros(cache.h2.rows, cache.h2.cols);
        for r in 0..cache.h2.rows {
            for c in 0..cache.h2.cols {
                grad_h2.set(r, c, grad_pooled.data[c] / n);
            }
        }
        let grad_h1 = self.l2.backward(&cache.c2, g, &grad_h2);
        let _ = self.l1.backward(&cache.c1, g, &grad_h1);
        let _ = &cache.h1;
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.l1.lin.zero_grad();
        self.l2.lin.zero_grad();
        self.proj.zero_grad();
    }

    /// Adam step.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        self.l1.lin.adam_step(lr, t, cfg);
        self.l2.lin.adam_step(lr, t, cfg);
        self.proj.adam_step(lr, t, cfg);
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.l1.lin.param_count() + self.l2.lin.param_count() + self.proj.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_tree() -> TreeStructure {
        TreeStructure {
            left: vec![Some(1), None, None],
            right: vec![Some(2), None, None],
        }
    }

    #[test]
    fn graph_from_tree_is_symmetric_with_self_loops() {
        let g = Graph::from_tree(&tiny_tree());
        assert!(g.neighbors[0].contains(&0));
        assert!(g.neighbors[0].contains(&1));
        assert!(g.neighbors[1].contains(&0));
        assert_eq!(g.neighbors[0].len(), 3);
        assert_eq!(g.neighbors[1].len(), 2);
    }

    #[test]
    fn aggregate_backward_is_transpose_of_forward() {
        // <Agg(x), y> == <x, AggT(y)> for random x, y.
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::from_tree(&tiny_tree());
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let y = Mat::randn(3, 4, 1.0, &mut rng);
        let ax = g.aggregate(&x);
        let aty = g.aggregate_backward(&y);
        let lhs: f32 = ax.data.iter().zip(&y.data).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data.iter().zip(&aty.data).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn gradient_check_through_encoder() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gcn = Gcn::new(4, 6, 5, 2, &mut rng);
        let tree = tiny_tree();
        let g = Graph::from_tree(&tree);
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let target = Mat::randn(1, 2, 1.0, &mut rng);

        let (emb, cache) = gcn.forward(&x, &g);
        let (_, grad) = mse(&emb, &target);
        gcn.zero_grad();
        gcn.backward(&cache, &g, &grad);

        let loss_of = |gcn: &Gcn| mse(&gcn.infer(&x, &g), &target).0;
        let eps = 1e-2;
        for idx in [0usize, 5] {
            let mut gp = gcn.clone();
            gp.l1.lin.w.value.data[idx] += eps;
            let mut gm = gcn.clone();
            gm.l1.lin.w.value.data[idx] -= eps;
            let num = (loss_of(&gp) - loss_of(&gm)) / (2.0 * eps);
            let ana = gcn.l1.lin.w.grad.data[idx];
            assert!((num - ana).abs() < 5e-2, "num {num} vs ana {ana}");
        }
    }

    #[test]
    fn gcn_fits_a_simple_graph_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gcn = Gcn::new(2, 12, 8, 4, &mut rng);
        let mut head = Linear::new(4, 1, &mut rng);
        let cfg = AdamConfig::default();
        let tree = tiny_tree();
        let g = Graph::from_tree(&tree);
        let mut t = 0;
        for _ in 0..600 {
            let x = Mat::randn(3, 2, 1.0, &mut rng);
            let label = x.data.iter().sum::<f32>(); // sum of all features
            let (emb, cache) = gcn.forward(&x, &g);
            let pred = head.forward(&emb);
            let (_, grad) = mse(&pred, &Mat::from_vec(1, 1, vec![label]));
            gcn.zero_grad();
            head.zero_grad();
            let gemb = head.backward(&emb, &grad);
            gcn.backward(&cache, &g, &gemb);
            t += 1;
            gcn.adam_step(0.01, t, &cfg);
            head.adam_step(0.01, t, &cfg);
        }
        let x = Mat::randn(3, 2, 1.0, &mut rng);
        let label = x.data.iter().sum::<f32>();
        let pred = head.forward(&gcn.infer(&x, &g)).data[0];
        assert!((pred - label).abs() < 0.5, "pred {pred} vs label {label}");
    }
}
