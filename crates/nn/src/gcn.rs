//! Graph Convolutional Network encoder (baseline cost model, after
//! Kipf & Welling / the zero-shot cost model of Hilprecht & Binnig).
//!
//! Plans are viewed as undirected graphs (tree edges + self loops); each
//! layer aggregates mean-normalized neighbor features before a linear map
//! and ReLU, and the node representations are mean-pooled into a plan
//! embedding. The workspace (`_ws`) pair reuses caller-provided buffers;
//! the legacy `forward`/`backward` pair delegates to it.

use crate::linear::Linear;
use crate::mat::Mat;
use crate::param::AdamConfig;
use crate::tcn::TreeStructure;
use crate::workspace::Workspace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// Adjacency as neighbor lists including the self loop.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Graph {
    /// `neighbors[i]` contains `i` itself plus every adjacent node.
    pub neighbors: Vec<Vec<usize>>,
}

impl Graph {
    /// Builds the undirected graph (with self loops) of a binary tree.
    pub fn from_tree(tree: &TreeStructure) -> Graph {
        let n = tree.len();
        let mut neighbors: Vec<Vec<usize>> = (0..n).map(|i| vec![i]).collect();
        for i in 0..n {
            for child in [tree.left[i], tree.right[i]].into_iter().flatten() {
                neighbors[i].push(child);
                neighbors[child].push(i);
            }
        }
        Graph { neighbors }
    }

    /// Mean aggregation `agg[i] = mean_{j ∈ N(i)} x[j]`.
    fn aggregate_into(&self, x: &Mat, out: &mut Mat) {
        out.resize_in_place(x.rows, x.cols);
        out.fill(0.0);
        for (i, ns) in self.neighbors.iter().enumerate() {
            let inv = 1.0 / ns.len() as f32;
            for &j in ns {
                for c in 0..x.cols {
                    out.data[i * x.cols + c] += x.data[j * x.cols + c] * inv;
                }
            }
        }
    }

    /// Transpose of the aggregation (for backward): scatter grad back.
    fn aggregate_backward_into(&self, grad: &Mat, out: &mut Mat) {
        out.resize_in_place(grad.rows, grad.cols);
        out.fill(0.0);
        for (i, ns) in self.neighbors.iter().enumerate() {
            let inv = 1.0 / ns.len() as f32;
            for &j in ns {
                for c in 0..grad.cols {
                    out.data[j * grad.cols + c] += grad.data[i * grad.cols + c] * inv;
                }
            }
        }
    }
}

/// One GCN layer: `h = relu(Agg(x) Wᵀ + b)`.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct GcnLayer {
    lin: Linear,
}

impl GcnLayer {
    /// He-initialized layer.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Self {
        GcnLayer {
            lin: Linear::new(in_dim, out_dim, rng),
        }
    }
}

/// Reusable forward buffers for the workspace pair.
#[derive(Debug, Clone, Default)]
pub struct GcnWs {
    agg1: Mat,
    h1: Mat,
    agg2: Mat,
    h2: Mat,
    pooled: Mat,
    emb: Mat,
}

impl GcnWs {
    /// The embedding produced by the last `forward_ws` call.
    pub fn emb(&self) -> &Mat {
        &self.emb
    }
}

/// Backward cache for the full encoder.
#[derive(Debug, Clone)]
pub struct GcnCache {
    ws: GcnWs,
}

/// A two-layer GCN encoder with mean pooling and a projection head.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gcn {
    l1: GcnLayer,
    l2: GcnLayer,
    proj: Linear,
}

impl Gcn {
    /// Builds `in → hidden → hidden2 → emb`.
    pub fn new<R: Rng>(
        in_dim: usize,
        hidden1: usize,
        hidden2: usize,
        emb_dim: usize,
        rng: &mut R,
    ) -> Gcn {
        Gcn {
            l1: GcnLayer::new(in_dim, hidden1, rng),
            l2: GcnLayer::new(hidden1, hidden2, rng),
            proj: Linear::new(hidden2, emb_dim, rng),
        }
    }

    /// Encodes a plan graph into a 1×emb embedding.
    ///
    /// Thin allocating wrapper over [`Gcn::forward_ws`].
    pub fn forward(&self, x: &Mat, g: &Graph) -> (Mat, GcnCache) {
        let mut ws = GcnWs::default();
        self.forward_ws(x, g, &mut ws);
        let emb = ws.emb.clone();
        (emb, GcnCache { ws })
    }

    /// Allocation-free encoding: aggregation, fused matmul+bias+ReLU, mean
    /// pool, and projection all write into the workspace's reusable buffers.
    pub fn forward_ws(&self, x: &Mat, g: &Graph, ws: &mut GcnWs) {
        let GcnWs {
            agg1,
            h1,
            agg2,
            h2,
            pooled,
            emb,
        } = ws;
        g.aggregate_into(x, agg1);
        self.l1.lin.forward_relu_into(agg1, h1);
        g.aggregate_into(h1, agg2);
        self.l2.lin.forward_relu_into(agg2, h2);
        // Mean pooling over nodes.
        pooled.resize_in_place(1, h2.cols);
        pooled.fill(0.0);
        for r in 0..h2.rows {
            for c in 0..h2.cols {
                pooled.data[c] += h2.get(r, c) / h2.rows as f32;
            }
        }
        self.proj.forward_into(pooled, emb);
    }

    /// Inference-only encoding.
    pub fn infer(&self, x: &Mat, g: &Graph) -> Mat {
        let mut ws = GcnWs::default();
        self.forward_ws(x, g, &mut ws);
        ws.emb
    }

    /// Backward from an embedding gradient.
    ///
    /// Thin allocating wrapper over [`Gcn::backward_ws`].
    pub fn backward(&mut self, cache: &GcnCache, g: &Graph, grad_emb: &Mat) {
        let mut scratch = Workspace::new();
        self.backward_ws(g, &cache.ws, grad_emb, &mut scratch);
    }

    /// Allocation-free backward; accumulates directly into the parameter
    /// gradients. The first layer's input gradient (gradient w.r.t. the node
    /// features) is never computed — no caller uses it.
    pub fn backward_ws(&mut self, g: &Graph, ws: &GcnWs, grad_emb: &Mat, scratch: &mut Workspace) {
        scratch.with(1, ws.pooled.cols, |scratch, grad_pooled| {
            Linear::backward_into(
                &self.proj.w.value,
                &ws.pooled,
                grad_emb,
                &mut self.proj.w.grad,
                &mut self.proj.b.grad,
                Some(grad_pooled),
                scratch,
            );
            let n = ws.h2.rows as f32;
            scratch.with(ws.h2.rows, ws.h2.cols, |scratch, grad_h2| {
                for r in 0..ws.h2.rows {
                    for c in 0..ws.h2.cols {
                        grad_h2.set(r, c, grad_pooled.data[c] / n);
                    }
                }
                scratch.with(ws.h2.rows, ws.h2.cols, |scratch, gagg2| {
                    Linear::backward_relu_into(
                        &self.l2.lin.w.value,
                        &ws.agg2,
                        &ws.h2,
                        grad_h2,
                        &mut self.l2.lin.w.grad,
                        &mut self.l2.lin.b.grad,
                        Some(gagg2),
                        scratch,
                    );
                    scratch.with(ws.h1.rows, ws.h1.cols, |scratch, grad_h1| {
                        g.aggregate_backward_into(gagg2, grad_h1);
                        Linear::backward_relu_into(
                            &self.l1.lin.w.value,
                            &ws.agg1,
                            &ws.h1,
                            grad_h1,
                            &mut self.l1.lin.w.grad,
                            &mut self.l1.lin.b.grad,
                            None,
                            scratch,
                        );
                    });
                });
            });
        });
    }

    /// Clears gradients.
    pub fn zero_grad(&mut self) {
        self.l1.lin.zero_grad();
        self.l2.lin.zero_grad();
        self.proj.zero_grad();
    }

    /// Adam step.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        self.l1.lin.adam_step(lr, t, cfg);
        self.l2.lin.adam_step(lr, t, cfg);
        self.proj.adam_step(lr, t, cfg);
    }

    /// Scalar parameter count.
    pub fn param_count(&self) -> usize {
        self.l1.lin.param_count() + self.l2.lin.param_count() + self.proj.param_count()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::loss::mse;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn tiny_tree() -> TreeStructure {
        TreeStructure {
            left: vec![Some(1), None, None],
            right: vec![Some(2), None, None],
        }
    }

    #[test]
    fn graph_from_tree_is_symmetric_with_self_loops() {
        let g = Graph::from_tree(&tiny_tree());
        assert!(g.neighbors[0].contains(&0));
        assert!(g.neighbors[0].contains(&1));
        assert!(g.neighbors[1].contains(&0));
        assert_eq!(g.neighbors[0].len(), 3);
        assert_eq!(g.neighbors[1].len(), 2);
    }

    #[test]
    fn aggregate_backward_is_transpose_of_forward() {
        // <Agg(x), y> == <x, AggT(y)> for random x, y.
        let mut rng = StdRng::seed_from_u64(1);
        let g = Graph::from_tree(&tiny_tree());
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let y = Mat::randn(3, 4, 1.0, &mut rng);
        let mut ax = Mat::default();
        g.aggregate_into(&x, &mut ax);
        let mut aty = Mat::default();
        g.aggregate_backward_into(&y, &mut aty);
        let lhs: f32 = ax.data.iter().zip(&y.data).map(|(a, b)| a * b).sum();
        let rhs: f32 = x.data.iter().zip(&aty.data).map(|(a, b)| a * b).sum();
        assert!((lhs - rhs).abs() < 1e-4);
    }

    #[test]
    fn gradient_check_through_encoder() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut gcn = Gcn::new(4, 6, 5, 2, &mut rng);
        let tree = tiny_tree();
        let g = Graph::from_tree(&tree);
        let x = Mat::randn(3, 4, 1.0, &mut rng);
        let target = Mat::randn(1, 2, 1.0, &mut rng);

        let (emb, cache) = gcn.forward(&x, &g);
        let (_, grad) = mse(&emb, &target);
        gcn.zero_grad();
        gcn.backward(&cache, &g, &grad);

        let loss_of = |gcn: &Gcn| mse(&gcn.infer(&x, &g), &target).0;
        let eps = 1e-2;
        for idx in [0usize, 5] {
            let mut gp = gcn.clone();
            gp.l1.lin.w.value.data[idx] += eps;
            let mut gm = gcn.clone();
            gm.l1.lin.w.value.data[idx] -= eps;
            let num = (loss_of(&gp) - loss_of(&gm)) / (2.0 * eps);
            let ana = gcn.l1.lin.w.grad.data[idx];
            assert!((num - ana).abs() < 5e-2, "num {num} vs ana {ana}");
        }
    }

    #[test]
    fn gcn_fits_a_simple_graph_function() {
        let mut rng = StdRng::seed_from_u64(3);
        let mut gcn = Gcn::new(2, 12, 8, 4, &mut rng);
        let mut head = Linear::new(4, 1, &mut rng);
        let cfg = AdamConfig::default();
        let tree = tiny_tree();
        let g = Graph::from_tree(&tree);
        let mut t = 0;
        for _ in 0..600 {
            let x = Mat::randn(3, 2, 1.0, &mut rng);
            let label = x.data.iter().sum::<f32>(); // sum of all features
            let (emb, cache) = gcn.forward(&x, &g);
            let pred = head.forward(&emb);
            let (_, grad) = mse(&pred, &Mat::from_vec(1, 1, vec![label]));
            gcn.zero_grad();
            head.zero_grad();
            let gemb = head.backward(&emb, &grad);
            gcn.backward(&cache, &g, &gemb);
            t += 1;
            gcn.adam_step(0.01, t, &cfg);
            head.adam_step(0.01, t, &cfg);
        }
        let x = Mat::randn(3, 2, 1.0, &mut rng);
        let label = x.data.iter().sum::<f32>();
        let pred = head.forward(&gcn.infer(&x, &g)).data[0];
        assert!((pred - label).abs() < 0.5, "pred {pred} vs label {label}");
    }
}
