//! Fully connected layers and activations with explicit backward passes.

use crate::mat::Mat;
use crate::param::{AdamConfig, Param};
use crate::workspace::Workspace;
use rand::Rng;
use serde::{Deserialize, Serialize};

/// A fully connected layer `y = x Wᵀ + b` (`x`: n×in, `W`: out×in).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, out×in.
    pub w: Param,
    /// Bias vector, 1×out.
    pub b: Param,
}

impl Linear {
    /// He-initialized layer.
    pub fn new<R: Rng>(in_dim: usize, out_dim: usize, rng: &mut R) -> Linear {
        let std = (2.0 / in_dim as f32).sqrt();
        Linear {
            w: Param::new(Mat::randn(out_dim, in_dim, std, rng)),
            b: Param::new(Mat::zeros(1, out_dim)),
        }
    }

    /// Input dimension.
    pub fn in_dim(&self) -> usize {
        self.w.value.cols
    }

    /// Output dimension.
    pub fn out_dim(&self) -> usize {
        self.w.value.rows
    }

    /// Forward: `x` is n×in, result n×out.
    pub fn forward(&self, x: &Mat) -> Mat {
        let mut y = Mat::default();
        self.forward_into(x, &mut y);
        y
    }

    /// Forward into a reusable buffer via the fused matmul+bias kernel.
    pub fn forward_into(&self, x: &Mat, y: &mut Mat) {
        x.matmul_nt_bias_into(&self.w.value, &self.b.value.data, false, y);
    }

    /// Forward followed by ReLU, fused into one output pass.
    pub fn forward_relu_into(&self, x: &Mat, y: &mut Mat) {
        x.matmul_nt_bias_into(&self.w.value, &self.b.value.data, true, y);
    }

    /// Backward: given the input `x` used in forward and `grad_out` (n×out),
    /// accumulates parameter gradients and returns `grad_in` (n×in).
    pub fn backward(&mut self, x: &Mat, grad_out: &Mat) -> Mat {
        let mut scratch = Workspace::new();
        let mut grad_in = Mat::default();
        Linear::backward_into(
            &self.w.value,
            x,
            grad_out,
            &mut self.w.grad,
            &mut self.b.grad,
            Some(&mut grad_in),
            &mut scratch,
        );
        grad_in
    }

    /// Allocation-free backward. `w` is the forward weight matrix; parameter
    /// gradients are computed into workspace scratch and then added to the
    /// `gw`/`gb` accumulators (so wrapper and workspace paths share one
    /// accumulation order); `grad_in`, when requested, is overwritten with
    /// `grad_out @ W`. Associated function (not `&mut self`) so callers can
    /// split value/grad borrows across `Param` fields.
    pub fn backward_into(
        w: &Mat,
        x: &Mat,
        grad_out: &Mat,
        gw: &mut Mat,
        gb: &mut Mat,
        grad_in: Option<&mut Mat>,
        scratch: &mut Workspace,
    ) {
        scratch.with(w.rows, w.cols, |scratch, dw| {
            // dW = grad_outᵀ @ x  (out×in)
            grad_out.matmul_tn_into(x, dw);
            gw.add_assign(dw);
            scratch.with(1, w.rows, |_, db| {
                grad_out.col_sums_into(db);
                gb.add_assign(db);
            });
        });
        if let Some(gi) = grad_in {
            // dX = grad_out @ W (n×in)
            grad_out.matmul_into(w, gi);
        }
    }

    /// Fused ReLU+linear backward: masks `grad_out` against the post-ReLU
    /// output `y` (equivalent to masking on the pre-activation, since
    /// `y = max(pre, 0)` is positive exactly where `pre` is) and then runs
    /// [`Linear::backward_into`] on the masked gradient.
    #[allow(clippy::too_many_arguments)]
    pub fn backward_relu_into(
        w: &Mat,
        x: &Mat,
        y: &Mat,
        grad_out: &Mat,
        gw: &mut Mat,
        gb: &mut Mat,
        grad_in: Option<&mut Mat>,
        scratch: &mut Workspace,
    ) {
        scratch.with(grad_out.rows, grad_out.cols, |scratch, gpre| {
            relu_mask_into(y, grad_out, gpre);
            Linear::backward_into(w, x, gpre, gw, gb, grad_in, scratch);
        });
    }

    /// Clears accumulated gradients.
    pub fn zero_grad(&mut self) {
        self.w.zero_grad();
        self.b.zero_grad();
    }

    /// Adam update on both parameters.
    pub fn adam_step(&mut self, lr: f32, t: u64, cfg: &AdamConfig) {
        self.w.adam_step(lr, t, cfg);
        self.b.adam_step(lr, t, cfg);
    }

    /// Number of scalar parameters.
    pub fn param_count(&self) -> usize {
        self.w.len() + self.b.len()
    }
}

/// Elementwise ops below this many elements stay serial (on top of the
/// global [`mcsim_par::min_parallel_work`] gate) — activations are cheap
/// per element, so fan-out only ever pays off on big batches.
fn elementwise_chunk(n: usize, pool: &mcsim_par::ThreadPool) -> Option<usize> {
    if pool.threads() > 1 && n > 1 && n * 4 >= mcsim_par::min_parallel_work() {
        Some(n.div_ceil(pool.threads() * 2).max(1))
    } else {
        None
    }
}

/// Elementwise ReLU clamp over a slice, dispatching on the process-wide
/// [`crate::kernels`] mode. Every element is written exactly once, so the
/// unrolled epilogue is trivially bit-identical to the plain loop.
#[inline]
fn relu_clamp(c: &mut [f32]) {
    match crate::kernels::kernel_mode() {
        crate::kernels::KernelMode::Scalar => {
            for v in c.iter_mut() {
                *v = v.max(0.0);
            }
        }
        crate::kernels::KernelMode::Simd => {
            let n = c.len();
            let (main, tail) = c.split_at_mut(n - n % 8);
            for o in main.chunks_exact_mut(8) {
                o[0] = o[0].max(0.0);
                o[1] = o[1].max(0.0);
                o[2] = o[2].max(0.0);
                o[3] = o[3].max(0.0);
                o[4] = o[4].max(0.0);
                o[5] = o[5].max(0.0);
                o[6] = o[6].max(0.0);
                o[7] = o[7].max(0.0);
            }
            for v in tail.iter_mut() {
                *v = v.max(0.0);
            }
        }
    }
}

/// Elementwise `v /= sum` over a softmax row; same dispatch and bit-identity
/// argument as [`relu_clamp`] (one division per element in both modes).
#[inline]
fn div_by_sum(row: &mut [f32], sum: f32) {
    match crate::kernels::kernel_mode() {
        crate::kernels::KernelMode::Scalar => {
            for v in row.iter_mut() {
                *v /= sum;
            }
        }
        crate::kernels::KernelMode::Simd => {
            let n = row.len();
            let (main, tail) = row.split_at_mut(n - n % 8);
            for o in main.chunks_exact_mut(8) {
                o[0] /= sum;
                o[1] /= sum;
                o[2] /= sum;
                o[3] /= sum;
                o[4] /= sum;
                o[5] /= sum;
                o[6] /= sum;
                o[7] /= sum;
            }
            for v in tail.iter_mut() {
                *v /= sum;
            }
        }
    }
}

/// ReLU forward; returns output (input preserved for backward).
pub fn relu(x: &Mat) -> Mat {
    let mut out = x.clone();
    let pool = mcsim_par::ThreadPool::global();
    match elementwise_chunk(out.data.len(), &pool) {
        Some(chunk) => pool.parallel_for_chunks_mut(&mut out.data, chunk, |_, c| relu_clamp(c)),
        None => relu_clamp(&mut out.data),
    }
    out
}

/// ReLU backward: masks `grad` where the forward input was ≤ 0.
pub fn relu_backward(input: &Mat, grad: &Mat) -> Mat {
    let mut out = grad.clone();
    let mask = |out: &mut [f32], inp: &[f32]| {
        for (g, &x) in out.iter_mut().zip(inp) {
            if x <= 0.0 {
                *g = 0.0;
            }
        }
    };
    let pool = mcsim_par::ThreadPool::global();
    match elementwise_chunk(out.data.len(), &pool) {
        Some(chunk) => {
            let jobs: Vec<(&mut [f32], &[f32])> = out
                .data
                .chunks_mut(chunk)
                .zip(input.data.chunks(chunk))
                .collect();
            pool.for_each(jobs, |(o, i)| mask(o, i));
        }
        None => mask(&mut out.data, &input.data),
    }
    out
}

/// Writes `grad` masked by the post-ReLU output `y` into `out`:
/// `out[i] = grad[i]` where `y[i] > 0`, else `0`. Masking on the output is
/// bit-equivalent to [`relu_backward`]'s masking on the pre-activation.
pub fn relu_mask_into(y: &Mat, grad: &Mat, out: &mut Mat) {
    assert_eq!(y.data.len(), grad.data.len());
    out.resize_in_place(grad.rows, grad.cols);
    for ((o, &g), &v) in out.data.iter_mut().zip(&grad.data).zip(&y.data) {
        *o = if v <= 0.0 { 0.0 } else { g };
    }
}

/// Row-wise softmax. Rows are independent, so row blocks run in parallel
/// with bit-identical results.
pub fn softmax_rows(x: &Mat) -> Mat {
    let mut out = Mat::default();
    softmax_rows_into(x, &mut out);
    out
}

/// Row-wise softmax into a reusable buffer; kernel shared with
/// [`softmax_rows`].
pub fn softmax_rows_into(x: &Mat, out: &mut Mat) {
    out.copy_from(x);
    if out.cols == 0 {
        return;
    }
    let softmax_block = |block: &mut [f32], cols: usize| {
        for row in block.chunks_mut(cols) {
            let max = row.iter().cloned().fold(f32::MIN, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            div_by_sum(row, sum);
        }
    };
    let cols = out.cols;
    let pool = mcsim_par::ThreadPool::global();
    // exp() dominates: weight it like ~8 flops per element.
    if pool.threads() > 1 && out.rows > 1 && out.data.len() * 8 >= mcsim_par::min_parallel_work() {
        let block_rows = out.rows.div_ceil(pool.threads() * 2).max(1);
        pool.parallel_for_chunks_mut(&mut out.data, block_rows * cols, |_, c| {
            softmax_block(c, cols)
        });
    } else {
        softmax_block(&mut out.data, cols);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    /// Finite-difference gradient check for the linear layer.
    #[test]
    fn linear_gradients_match_finite_differences() {
        let mut rng = StdRng::seed_from_u64(0);
        let mut layer = Linear::new(4, 3, &mut rng);
        let x = Mat::randn(2, 4, 1.0, &mut rng);
        let target = Mat::randn(2, 3, 1.0, &mut rng);

        // Loss = 0.5 * ||y - target||².
        let loss_of = |layer: &Linear, x: &Mat| -> f32 {
            let y = layer.forward(x);
            y.data
                .iter()
                .zip(&target.data)
                .map(|(a, b)| 0.5 * (a - b) * (a - b))
                .sum()
        };

        let y = layer.forward(&x);
        let grad_out = Mat {
            rows: y.rows,
            cols: y.cols,
            data: y
                .data
                .iter()
                .zip(&target.data)
                .map(|(a, b)| a - b)
                .collect(),
        };
        layer.zero_grad();
        let grad_in = layer.backward(&x, &grad_out);

        let eps = 1e-3;
        // Check dW numerically at a few entries.
        for &idx in &[0usize, 5, 11] {
            let mut lp = layer.clone();
            lp.w.value.data[idx] += eps;
            let mut lm = layer.clone();
            lm.w.value.data[idx] -= eps;
            let num = (loss_of(&lp, &x) - loss_of(&lm, &x)) / (2.0 * eps);
            let ana = layer.w.grad.data[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "dW[{idx}]: num {num} vs ana {ana}"
            );
        }
        // Check dX numerically.
        for &idx in &[0usize, 3, 7] {
            let mut xp = x.clone();
            xp.data[idx] += eps;
            let mut xm = x.clone();
            xm.data[idx] -= eps;
            let num = (loss_of(&layer, &xp) - loss_of(&layer, &xm)) / (2.0 * eps);
            let ana = grad_in.data[idx];
            assert!(
                (num - ana).abs() < 1e-2,
                "dX[{idx}]: num {num} vs ana {ana}"
            );
        }
    }

    #[test]
    fn relu_masks_negative_inputs() {
        let x = Mat::from_vec(1, 4, vec![-1.0, 0.0, 0.5, 2.0]);
        let y = relu(&x);
        assert_eq!(y.data, vec![0.0, 0.0, 0.5, 2.0]);
        let g = relu_backward(&x, &Mat::from_vec(1, 4, vec![1.0; 4]));
        assert_eq!(g.data, vec![0.0, 0.0, 1.0, 1.0]);
    }

    /// Both epilogue widths must clamp/scale to the same bits — widths that
    /// exercise the 8-wide body plus every tail length.
    #[test]
    fn unrolled_epilogues_match_scalar_bitwise() {
        use crate::kernels::{set_kernel_mode, KernelMode};
        let mut rng = StdRng::seed_from_u64(33);
        for cols in [1usize, 4, 7, 8, 9, 16, 23] {
            let x = Mat::randn(3, cols, 1.0, &mut rng);
            let prev = set_kernel_mode(KernelMode::Scalar);
            let (r_s, sm_s) = (relu(&x), softmax_rows(&x));
            set_kernel_mode(KernelMode::Simd);
            let (r_u, sm_u) = (relu(&x), softmax_rows(&x));
            set_kernel_mode(prev);
            assert_eq!(r_s, r_u, "relu cols {cols}");
            assert_eq!(sm_s, sm_u, "softmax cols {cols}");
        }
    }

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Mat::from_vec(2, 3, vec![1.0, 2.0, 3.0, -5.0, 0.0, 5.0]);
        let s = softmax_rows(&x);
        for r in 0..2 {
            let sum: f32 = s.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-6);
            assert!(s.row(r).iter().all(|&p| p >= 0.0));
        }
    }

    #[test]
    fn relu_mask_on_output_matches_legacy_mask_on_input() {
        let mut rng = StdRng::seed_from_u64(21);
        let pre = Mat::randn(3, 5, 1.0, &mut rng);
        let grad = Mat::randn(3, 5, 1.0, &mut rng);
        let y = relu(&pre);
        let want = relu_backward(&pre, &grad);
        let mut got = Mat::default();
        relu_mask_into(&y, &grad, &mut got);
        assert_eq!(got, want);
    }

    #[test]
    fn backward_into_matches_wrapper_bitwise() {
        let mut rng = StdRng::seed_from_u64(22);
        let mut layer = Linear::new(6, 4, &mut rng);
        let x = Mat::randn(3, 6, 1.0, &mut rng);
        let g = Mat::randn(3, 4, 1.0, &mut rng);
        layer.zero_grad();
        let gi_wrap = layer.backward(&x, &g);
        let (gw_wrap, gb_wrap) = (layer.w.grad.clone(), layer.b.grad.clone());

        let mut gw = Mat::zeros(4, 6);
        let mut gb = Mat::zeros(1, 4);
        let mut gi = Mat::default();
        let mut ws = crate::workspace::Workspace::new();
        Linear::backward_into(
            &layer.w.value,
            &x,
            &g,
            &mut gw,
            &mut gb,
            Some(&mut gi),
            &mut ws,
        );
        assert_eq!(gw, gw_wrap);
        assert_eq!(gb, gb_wrap);
        assert_eq!(gi, gi_wrap);
    }

    #[test]
    fn linear_learns_a_linear_map() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut layer = Linear::new(2, 1, &mut rng);
        let cfg = AdamConfig::default();
        // Learn y = 3a - 2b + 1.
        for t in 1..=3000 {
            let x = Mat::randn(8, 2, 1.0, &mut rng);
            let target: Vec<f32> = (0..8)
                .map(|i| 3.0 * x.get(i, 0) - 2.0 * x.get(i, 1) + 1.0)
                .collect();
            let y = layer.forward(&x);
            let grad = Mat::from_vec(
                8,
                1,
                y.data
                    .iter()
                    .zip(&target)
                    .map(|(a, b)| (a - b) / 8.0)
                    .collect(),
            );
            layer.zero_grad();
            layer.backward(&x, &grad);
            layer.adam_step(0.02, t, &cfg);
        }
        assert!((layer.w.value.data[0] - 3.0).abs() < 0.05);
        assert!((layer.w.value.data[1] + 2.0).abs() < 0.05);
        assert!((layer.b.value.data[0] - 1.0).abs() < 0.05);
    }
}
