//! Single regression trees grown by exact greedy split search on
//! first/second-order gradients (the XGBoost split criterion).

use serde::{Deserialize, Serialize};

/// One node of a regression tree (indices into the arena).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum TreeNode {
    /// Internal split: `x[feature] < threshold` goes left, else right.
    Split {
        /// Feature index.
        feature: usize,
        /// Split threshold.
        threshold: f64,
        /// Left child index.
        left: usize,
        /// Right child index.
        right: usize,
    },
    /// Leaf with an output value.
    Leaf {
        /// Leaf weight.
        value: f64,
    },
}

/// A regression tree.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tree {
    nodes: Vec<TreeNode>,
}

/// Growth hyperparameters for one tree.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TreeParams {
    /// Maximum depth (root = depth 0).
    pub max_depth: usize,
    /// L2 regularization λ on leaf weights.
    pub lambda: f64,
    /// Minimum gain γ to accept a split.
    pub gamma: f64,
    /// Minimum sum of hessians per child.
    pub min_child_weight: f64,
}

impl Default for TreeParams {
    fn default() -> Self {
        TreeParams {
            max_depth: 4,
            lambda: 1.0,
            gamma: 0.0,
            min_child_weight: 1.0,
        }
    }
}

impl Tree {
    /// Grows a tree on gradients `g` and hessians `h` for the rows of `x`
    /// listed in `rows` (features addressed via `x[row][feature]`).
    pub fn fit(
        x: &[Vec<f64>],
        g: &[f64],
        h: &[f64],
        rows: &[usize],
        n_features: usize,
        params: &TreeParams,
    ) -> Tree {
        let mut nodes = Vec::new();
        build(x, g, h, rows.to_vec(), n_features, params, 0, &mut nodes);
        Tree { nodes }
    }

    /// Predicts the leaf value for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        let mut i = 0;
        loop {
            match &self.nodes[i] {
                TreeNode::Leaf { value } => return *value,
                TreeNode::Split {
                    feature,
                    threshold,
                    left,
                    right,
                } => {
                    let v = row.get(*feature).copied().unwrap_or(0.0);
                    i = if v < *threshold { *left } else { *right };
                }
            }
        }
    }

    /// Number of nodes (for model-size accounting).
    pub fn node_count(&self) -> usize {
        self.nodes.len()
    }

    /// Read access to the node arena (for importance analysis).
    pub fn nodes(&self) -> &[TreeNode] {
        &self.nodes
    }
}

/// Recursively grows a subtree; returns its root index in `nodes`.
#[allow(clippy::too_many_arguments)]
fn build(
    x: &[Vec<f64>],
    g: &[f64],
    h: &[f64],
    rows: Vec<usize>,
    n_features: usize,
    params: &TreeParams,
    depth: usize,
    nodes: &mut Vec<TreeNode>,
) -> usize {
    let g_sum: f64 = rows.iter().map(|&r| g[r]).sum();
    let h_sum: f64 = rows.iter().map(|&r| h[r]).sum();

    let make_leaf = |nodes: &mut Vec<TreeNode>| {
        let value = -g_sum / (h_sum + params.lambda);
        nodes.push(TreeNode::Leaf { value });
        nodes.len() - 1
    };

    if depth >= params.max_depth || rows.len() < 2 {
        return make_leaf(nodes);
    }

    // Exact greedy split search.
    let parent_score = g_sum * g_sum / (h_sum + params.lambda);
    let mut best: Option<(f64, usize, f64)> = None; // (gain, feature, threshold)
    let mut sorted = rows.clone();
    // `f` indexes columns of the row-major sample matrix, not `x` itself.
    #[allow(clippy::needless_range_loop)]
    for f in 0..n_features {
        sorted.sort_by(|&a, &b| {
            x[a][f]
                .partial_cmp(&x[b][f])
                .unwrap_or(std::cmp::Ordering::Equal)
        });
        let mut gl = 0.0;
        let mut hl = 0.0;
        for w in 0..sorted.len() - 1 {
            let r = sorted[w];
            gl += g[r];
            hl += h[r];
            // Only split between distinct feature values.
            if x[sorted[w]][f] == x[sorted[w + 1]][f] {
                continue;
            }
            let gr = g_sum - gl;
            let hr = h_sum - hl;
            if hl < params.min_child_weight || hr < params.min_child_weight {
                continue;
            }
            let gain =
                gl * gl / (hl + params.lambda) + gr * gr / (hr + params.lambda) - parent_score;
            if gain > params.gamma && best.map(|(bg, _, _)| gain > bg).unwrap_or(true) {
                let threshold = 0.5 * (x[sorted[w]][f] + x[sorted[w + 1]][f]);
                best = Some((gain, f, threshold));
            }
        }
    }

    let Some((_, feature, threshold)) = best else {
        return make_leaf(nodes);
    };

    let (left_rows, right_rows): (Vec<usize>, Vec<usize>) =
        rows.into_iter().partition(|&r| x[r][feature] < threshold);

    // Reserve the split node slot, then build children.
    let idx = nodes.len();
    nodes.push(TreeNode::Leaf { value: 0.0 }); // placeholder
    let left = build(x, g, h, left_rows, n_features, params, depth + 1, nodes);
    let right = build(x, g, h, right_rows, n_features, params, depth + 1, nodes);
    nodes[idx] = TreeNode::Split {
        feature,
        threshold,
        left,
        right,
    };
    idx
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_tree_fits_a_step_function() {
        // y = 1 if x0 > 0.5 else -1; squared loss ⇒ g = pred - y = -y at
        // pred 0, h = 1.
        let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64 / 100.0]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 0.5 { 1.0 } else { -1.0 })
            .collect();
        let g: Vec<f64> = y.iter().map(|&v| -v).collect();
        let h = vec![1.0; 100];
        let rows: Vec<usize> = (0..100).collect();
        let t = Tree::fit(&x, &g, &h, &rows, 1, &TreeParams::default());
        assert!(t.predict(&[0.2]) < -0.8);
        assert!(t.predict(&[0.9]) > 0.8);
    }

    #[test]
    fn depth_zero_returns_single_leaf_mean() {
        let x = vec![vec![0.0], vec![1.0]];
        let g = vec![-2.0, -4.0]; // pulls toward +3 with lambda=0
        let h = vec![1.0, 1.0];
        let params = TreeParams {
            max_depth: 0,
            lambda: 0.0,
            ..TreeParams::default()
        };
        let t = Tree::fit(&x, &g, &h, &[0, 1], 1, &params);
        assert_eq!(t.node_count(), 1);
        assert!((t.predict(&[0.5]) - 3.0).abs() < 1e-12);
    }

    #[test]
    fn lambda_shrinks_leaf_values() {
        let x = vec![vec![0.0]];
        let g = vec![-1.0];
        let h = vec![1.0];
        let t0 = Tree::fit(
            &x,
            &g,
            &h,
            &[0],
            1,
            &TreeParams {
                max_depth: 0,
                lambda: 0.0,
                ..TreeParams::default()
            },
        );
        let t1 = Tree::fit(
            &x,
            &g,
            &h,
            &[0],
            1,
            &TreeParams {
                max_depth: 0,
                lambda: 9.0,
                ..TreeParams::default()
            },
        );
        assert!((t0.predict(&[0.0]) - 1.0).abs() < 1e-12);
        assert!((t1.predict(&[0.0]) - 0.1).abs() < 1e-12);
    }

    #[test]
    fn no_split_on_constant_features() {
        let x = vec![vec![1.0]; 10];
        let g: Vec<f64> = (0..10).map(|i| i as f64 - 4.5).collect();
        let h = vec![1.0; 10];
        let rows: Vec<usize> = (0..10).collect();
        let t = Tree::fit(&x, &g, &h, &rows, 1, &TreeParams::default());
        assert_eq!(t.node_count(), 1, "constant feature must not split");
    }

    #[test]
    fn missing_features_predict_through_default_path() {
        let x: Vec<Vec<f64>> = (0..20).map(|i| vec![i as f64]).collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| if r[0] > 10.0 { 1.0 } else { 0.0 })
            .collect();
        let g: Vec<f64> = y.iter().map(|&v| -v).collect();
        let h = vec![1.0; 20];
        let rows: Vec<usize> = (0..20).collect();
        let t = Tree::fit(&x, &g, &h, &rows, 1, &TreeParams::default());
        // Short row: treated as 0.0.
        let p = t.predict(&[]);
        assert!(p.is_finite());
    }
}
