//! Gradient boosting with second-order (Newton) updates and shrinkage.

use crate::tree::{Tree, TreeParams};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

/// Boosting hyperparameters.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct GbdtConfig {
    /// Number of boosting rounds.
    pub n_trees: usize,
    /// Learning rate (shrinkage) η.
    pub learning_rate: f64,
    /// Row subsampling fraction per round.
    pub subsample: f64,
    /// Per-tree growth parameters.
    pub tree: TreeParams,
}

impl Default for GbdtConfig {
    fn default() -> Self {
        GbdtConfig {
            n_trees: 60,
            learning_rate: 0.15,
            subsample: 0.9,
            tree: TreeParams::default(),
        }
    }
}

/// A boosted ensemble of regression trees (squared-error objective).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Gbdt {
    base_score: f64,
    trees: Vec<Tree>,
    config: GbdtConfig,
}

impl Gbdt {
    /// Fits the ensemble to `(x, y)` pairs with a squared-error objective
    /// (`g = pred − y`, `h = 1`).
    ///
    /// # Panics
    ///
    /// Panics if `x` and `y` lengths differ or the training set is empty.
    pub fn fit(x: &[Vec<f64>], y: &[f64], config: GbdtConfig, seed: u64) -> Gbdt {
        assert_eq!(x.len(), y.len(), "feature/label length mismatch");
        assert!(!x.is_empty(), "cannot fit on an empty training set");
        let n_features = x.iter().map(|r| r.len()).max().unwrap_or(0);
        // Pad ragged rows so every row has the full width.
        let x: Vec<Vec<f64>> = x
            .iter()
            .map(|r| {
                let mut r = r.clone();
                r.resize(n_features, 0.0);
                r
            })
            .collect();

        let base_score = y.iter().sum::<f64>() / y.len() as f64;
        let mut pred = vec![base_score; y.len()];
        let mut trees = Vec::with_capacity(config.n_trees);
        let mut rng = StdRng::seed_from_u64(seed);

        for _ in 0..config.n_trees {
            let g: Vec<f64> = pred.iter().zip(y).map(|(p, t)| p - t).collect();
            let h = vec![1.0; y.len()];
            let rows: Vec<usize> = (0..y.len())
                .filter(|_| rng.gen_bool(config.subsample.clamp(0.01, 1.0)))
                .collect();
            let rows = if rows.is_empty() {
                (0..y.len()).collect()
            } else {
                rows
            };
            let tree = Tree::fit(&x, &g, &h, &rows, n_features, &config.tree);
            for (i, p) in pred.iter_mut().enumerate() {
                *p += config.learning_rate * tree.predict(&x[i]);
            }
            trees.push(tree);
        }

        Gbdt {
            base_score,
            trees,
            config,
        }
    }

    /// Predicts for one feature row.
    pub fn predict(&self, row: &[f64]) -> f64 {
        self.base_score
            + self.config.learning_rate * self.trees.iter().map(|t| t.predict(row)).sum::<f64>()
    }

    /// Predicts for a batch.
    pub fn predict_batch(&self, rows: &[Vec<f64>]) -> Vec<f64> {
        rows.iter().map(|r| self.predict(r)).collect()
    }

    /// Number of trees in the ensemble.
    pub fn tree_count(&self) -> usize {
        self.trees.len()
    }

    /// Read access to the trees (for importance analysis).
    pub fn trees(&self) -> &[Tree] {
        &self.trees
    }

    /// Total node count (proxy for model size).
    pub fn node_count(&self) -> usize {
        self.trees.iter().map(|t| t.node_count()).sum()
    }

    /// Approximate serialized size in bytes (for Figure 9b accounting):
    /// each node stores a feature id, threshold, and two child indices.
    pub fn approx_size_bytes(&self) -> usize {
        self.node_count() * 24 + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_friedman(n: usize, seed: u64) -> (Vec<Vec<f64>>, Vec<f64>) {
        let mut rng = StdRng::seed_from_u64(seed);
        let x: Vec<Vec<f64>> = (0..n)
            .map(|_| (0..5).map(|_| rng.gen_range(0.0..1.0)).collect())
            .collect();
        let y: Vec<f64> = x
            .iter()
            .map(|r| {
                10.0 * (std::f64::consts::PI * r[0] * r[1]).sin()
                    + 20.0 * (r[2] - 0.5).powi(2)
                    + 10.0 * r[3]
                    + 5.0 * r[4]
            })
            .collect();
        (x, y)
    }

    #[test]
    fn gbdt_fits_friedman_function() {
        let (x, y) = make_friedman(600, 1);
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 7);
        let (xt, yt) = make_friedman(200, 2);
        let preds = model.predict_batch(&xt);
        let mean = yt.iter().sum::<f64>() / yt.len() as f64;
        let ss_tot: f64 = yt.iter().map(|v| (v - mean).powi(2)).sum();
        let ss_res: f64 = preds.iter().zip(&yt).map(|(p, t)| (p - t).powi(2)).sum();
        let r2 = 1.0 - ss_res / ss_tot;
        assert!(r2 > 0.8, "R² = {r2}");
    }

    #[test]
    fn more_trees_reduce_training_error() {
        let (x, y) = make_friedman(300, 3);
        let err = |n_trees: usize| {
            let model = Gbdt::fit(
                &x,
                &y,
                GbdtConfig {
                    n_trees,
                    subsample: 1.0,
                    ..GbdtConfig::default()
                },
                1,
            );
            x.iter()
                .zip(&y)
                .map(|(r, t)| (model.predict(r) - t).powi(2))
                .sum::<f64>()
                / x.len() as f64
        };
        assert!(err(50) < err(5));
    }

    #[test]
    fn constant_target_is_fit_exactly_by_base_score() {
        let x = vec![vec![1.0], vec![2.0], vec![3.0]];
        let y = vec![5.0, 5.0, 5.0];
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 1);
        assert!((model.predict(&[10.0]) - 5.0).abs() < 1e-9);
    }

    #[test]
    fn ragged_rows_are_padded() {
        let x = vec![vec![1.0, 2.0], vec![3.0]];
        let y = vec![0.0, 1.0];
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 1);
        assert!(model.predict(&[3.0]).is_finite());
    }

    #[test]
    fn size_accounting_is_positive() {
        let (x, y) = make_friedman(100, 4);
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 1);
        assert!(model.node_count() > model.tree_count());
        assert!(model.approx_size_bytes() > 1000);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn empty_training_set_panics() {
        let _ = Gbdt::fit(&[], &[], GbdtConfig::default(), 0);
    }
}
