//! # tinygbdt
//!
//! Gradient-boosted regression trees with XGBoost-style second-order split
//! gain, L2-regularized leaf weights, shrinkage, and row subsampling.
//!
//! Used by the LOAM reproduction in two places: the **XGBoost baseline**
//! cost model of Section 7.1 (after PerfGuard) and the lightweight
//! **Ranker** of the project selector (Section 6).
//!
//! ## Example
//!
//! ```
//! use tinygbdt::{Gbdt, GbdtConfig};
//!
//! let x: Vec<Vec<f64>> = (0..100).map(|i| vec![i as f64]).collect();
//! let y: Vec<f64> = x.iter().map(|r| 2.0 * r[0] + 1.0).collect();
//! let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 42);
//! let pred = model.predict(&[50.0]);
//! assert!((pred - 101.0).abs() < 10.0);
//! ```

pub mod boost;
pub mod importance;
pub mod tree;

pub use boost::{Gbdt, GbdtConfig};
pub use importance::{split_importance, top_features};
pub use tree::{Tree, TreeNode, TreeParams};
