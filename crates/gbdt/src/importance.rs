//! Gain-based feature importance for boosted ensembles.
//!
//! Used to inspect what the project Ranker actually keys on (the paper's
//! motivating examples — nested joins with unusually high cost — should
//! surface as high-importance pattern and cost features).

use crate::boost::Gbdt;
use crate::tree::{Tree, TreeNode};

/// Split-count importance per feature: how often each feature is used as a
/// split across the ensemble, normalized to sum to 1.
pub fn split_importance(model: &Gbdt, n_features: usize) -> Vec<f64> {
    let mut counts = vec![0.0f64; n_features];
    for tree in model.trees() {
        accumulate(tree, &mut counts);
    }
    let total: f64 = counts.iter().sum();
    if total > 0.0 {
        for c in &mut counts {
            *c /= total;
        }
    }
    counts
}

fn accumulate(tree: &Tree, counts: &mut [f64]) {
    for node in tree.nodes() {
        if let TreeNode::Split { feature, .. } = node {
            if *feature < counts.len() {
                counts[*feature] += 1.0;
            }
        }
    }
}

/// The `k` most-used features, as (feature index, importance), descending.
pub fn top_features(model: &Gbdt, n_features: usize, k: usize) -> Vec<(usize, f64)> {
    let imp = split_importance(model, n_features);
    let mut idx: Vec<usize> = (0..n_features).collect();
    idx.sort_by(|&a, &b| {
        imp[b]
            .partial_cmp(&imp[a])
            .unwrap_or(std::cmp::Ordering::Equal)
    });
    idx.into_iter().take(k).map(|i| (i, imp[i])).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::boost::GbdtConfig;

    #[test]
    fn informative_feature_dominates_importance() {
        // y depends only on feature 1; features 0 and 2 are noise.
        let x: Vec<Vec<f64>> = (0..300)
            .map(|i| vec![(i % 13) as f64, (i % 7) as f64, ((i * 31) % 11) as f64])
            .collect();
        let y: Vec<f64> = x.iter().map(|r| 10.0 * r[1]).collect();
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 1);
        let imp = split_importance(&model, 3);
        assert!((imp.iter().sum::<f64>() - 1.0).abs() < 1e-9);
        assert!(
            imp[1] > imp[0] && imp[1] > imp[2],
            "feature 1 should dominate: {imp:?}"
        );
        let top = top_features(&model, 3, 1);
        assert_eq!(top[0].0, 1);
    }

    #[test]
    fn constant_model_has_zero_importance() {
        let x = vec![vec![1.0], vec![2.0]];
        let y = vec![3.0, 3.0];
        let model = Gbdt::fit(&x, &y, GbdtConfig::default(), 1);
        let imp = split_importance(&model, 1);
        assert_eq!(imp, vec![0.0]);
    }
}
