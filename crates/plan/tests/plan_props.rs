//! Property tests on the plan algebra: random well-formed trees round-trip
//! through compaction, stage decomposition partitions nodes, and signatures
//! are injective enough.

use mcsim_plan::expr::{CmpFn, Literal, Predicate};
use mcsim_plan::op::{AggAlgo, AggFunc, ExchangeKind, JoinAlgo, JoinKind};
use mcsim_plan::stage::decompose;
use mcsim_plan::{Operator, PlanSignature, PlanTree};
use proptest::prelude::*;

/// Strategy: random well-formed plan trees (scans at leaves, joins/unions
/// binary, everything else unary), depth-bounded.
fn plan_strategy() -> impl Strategy<Value = PlanTree> {
    // Recursive blueprint: an enum tree we then materialize.
    #[derive(Debug, Clone)]
    enum Node {
        Scan(u32, u32),
        Unary(u8, Box<Node>),
        Binary(u8, Box<Node>, Box<Node>),
    }
    let leaf = (0u32..50, 1u32..64).prop_map(|(t, parts)| Node::Scan(t, parts));
    let tree = leaf.prop_recursive(4, 24, 4, |inner| {
        prop_oneof![
            (0u8..6, inner.clone()).prop_map(|(k, c)| Node::Unary(k, Box::new(c))),
            (0u8..2, inner.clone(), inner).prop_map(|(k, a, b)| Node::Binary(
                k,
                Box::new(a),
                Box::new(b)
            )),
        ]
    });

    fn materialize(n: &Node, t: &mut PlanTree) -> usize {
        match n {
            Node::Scan(table, parts) => t.leaf(Operator::TableScan {
                table: *table,
                partitions_accessed: (*parts).min(8),
                partitions_total: *parts,
                columns: vec![*table * 10, *table * 10 + 1],
                predicate: Predicate::cmp(CmpFn::Eq, *table * 10 + 1, Literal::Int(3)),
            }),
            Node::Unary(kind, c) => {
                let child = materialize(c, t);
                let op = match kind % 6 {
                    0 => Operator::Filter {
                        predicate: Predicate::cmp(CmpFn::Gt, 1, Literal::Int(5)),
                    },
                    1 => Operator::exchange(ExchangeKind::HashPartition, vec![1]),
                    2 => Operator::Aggregate {
                        algo: AggAlgo::Hash,
                        funcs: vec![AggFunc::Sum],
                        agg_columns: vec![2],
                        group_by: vec![3],
                    },
                    3 => Operator::Limit { n: 100 },
                    4 => Operator::Spool { shared_id: 1 },
                    _ => Operator::Sort { keys: vec![4] },
                };
                t.unary(op, child)
            }
            Node::Binary(kind, a, b) => {
                let left = materialize(a, t);
                let right = materialize(b, t);
                let op = match kind % 2 {
                    0 => Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![1], vec![2]),
                    _ => Operator::Union,
                };
                t.binary(op, left, right)
            }
        }
    }

    tree.prop_map(|blueprint| {
        let mut t = PlanTree::new();
        let root = materialize(&blueprint, &mut t);
        let sink = t.unary(Operator::Sink, root);
        t.set_root(sink);
        t
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn random_plans_validate(plan in plan_strategy()) {
        prop_assert!(plan.validate().is_ok());
    }

    #[test]
    fn compaction_preserves_signature(plan in plan_strategy()) {
        let compacted = plan.compact();
        prop_assert!(compacted.validate().is_ok());
        prop_assert_eq!(PlanSignature::of(&plan), PlanSignature::of(&compacted));
        prop_assert_eq!(plan.len(), compacted.len()); // no orphans by construction
    }

    #[test]
    fn stages_partition_the_plan(plan in plan_strategy()) {
        let stages = decompose(&plan);
        let mut count = vec![0usize; plan.len()];
        for s in &stages.stages {
            for &n in &s.nodes {
                count[n] += 1;
            }
        }
        prop_assert!(count.iter().all(|&c| c == 1));
        // Execution order ends at the root stage and respects dependencies.
        let order = stages.execution_order();
        prop_assert_eq!(order.len(), stages.len());
        prop_assert_eq!(*order.last().unwrap(), stages.root);
    }

    #[test]
    fn stage_count_equals_exchanges_plus_one(plan in plan_strategy()) {
        let exchanges = plan.count_ops(|o| matches!(o, Operator::Exchange { .. }));
        let stages = decompose(&plan);
        prop_assert_eq!(stages.len(), exchanges + 1);
    }

    #[test]
    fn postorder_and_preorder_are_permutations(plan in plan_strategy()) {
        let mut post = plan.postorder();
        let mut pre = plan.preorder();
        post.sort_unstable();
        pre.sort_unstable();
        prop_assert_eq!(&post, &pre);
        prop_assert_eq!(post.len(), plan.len());
    }

    #[test]
    fn signatures_survive_serde(plan in plan_strategy()) {
        let json = serde_json::to_string(&plan).expect("serialize");
        let back: PlanTree = serde_json::from_str(&json).expect("deserialize");
        prop_assert_eq!(PlanSignature::of(&plan), PlanSignature::of(&back));
    }
}
