//! Stable plan fingerprints.
//!
//! The historical query repository deduplicates recurring queries and the
//! plan explorer deduplicates candidate plans by structural signature. The
//! signature is a 64-bit FNV-1a hash over a canonical pre-order serialization
//! of the plan; it is stable across processes (no `DefaultHasher`
//! randomization) so repositories can be persisted and compared.

use crate::expr::Predicate;
use crate::op::Operator;
use crate::tree::PlanTree;
use serde::{Deserialize, Serialize};

/// A stable 64-bit structural fingerprint of a plan.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct PlanSignature(pub u64);

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a hasher over byte chunks.
#[derive(Debug, Clone)]
struct Fnv(u64);

impl Fnv {
    fn new() -> Self {
        Fnv(FNV_OFFSET)
    }
    fn write(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= b as u64;
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }
    fn write_u32(&mut self, v: u32) {
        self.write(&v.to_le_bytes());
    }
    fn write_u64(&mut self, v: u64) {
        self.write(&v.to_le_bytes());
    }
}

/// Stable hash of arbitrary bytes — also used by LOAM's multi-segment hash
/// encoder, which needs process-stable hash functions.
pub fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(bytes);
    h.0
}

/// Stable hash of bytes with a seed, giving a family of independent hash
/// functions `f_i` as required by the multi-segment encoding (Appendix B.1).
pub fn fnv1a_seeded(seed: u64, bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.write(&seed.to_le_bytes());
    h.write(bytes);
    // One extra mixing round so nearby seeds decorrelate.
    let mut x = h.0;
    x ^= x >> 33;
    x = x.wrapping_mul(0xff51_afd7_ed55_8ccd);
    x ^= x >> 33;
    x
}

impl PlanSignature {
    /// Computes the signature of `plan`.
    ///
    /// Allocation-free: the pre-order walk (node, then left subtree, then
    /// right subtree — the same visit order as [`PlanTree::preorder`])
    /// recurses directly instead of materializing the node-id list, so a
    /// warm serving cache can fingerprint every incoming plan without
    /// touching the allocator.
    pub fn of(plan: &PlanTree) -> PlanSignature {
        let mut h = Fnv::new();
        if let Some(root) = plan.try_root() {
            hash_subtree(plan, root, &mut h);
        }
        PlanSignature(h.0)
    }
}

/// Hashes the subtree rooted at `id` in pre-order, byte-for-byte identical
/// to the historical `preorder()`-driven loop.
fn hash_subtree(plan: &PlanTree, id: usize, h: &mut Fnv) {
    let n = plan.node(id);
    hash_operator(h, &n.op);
    // Mark shape: which children exist.
    let shape = (n.left.is_some() as u8) | ((n.right.is_some() as u8) << 1);
    h.write(&[0xfe, shape]);
    if let Some(l) = n.left {
        hash_subtree(plan, l, h);
    }
    if let Some(r) = n.right {
        hash_subtree(plan, r, h);
    }
}

fn hash_operator(h: &mut Fnv, op: &Operator) {
    h.write(&[op.op_type().index() as u8]);
    match op {
        Operator::TableScan {
            table,
            partitions_accessed,
            partitions_total,
            columns,
            predicate,
        } => {
            h.write_u32(*table);
            h.write_u32(*partitions_accessed);
            h.write_u32(*partitions_total);
            hash_cols(h, columns);
            hash_pred(h, predicate);
        }
        Operator::Filter { predicate } => hash_pred(h, predicate),
        Operator::Calc { predicate, columns } => {
            hash_pred(h, predicate);
            hash_cols(h, columns);
        }
        Operator::Project { columns } => hash_cols(h, columns),
        Operator::Join {
            kind,
            algo,
            left_keys,
            right_keys,
        } => {
            h.write(&[*kind as u8, *algo as u8]);
            hash_cols(h, left_keys);
            hash_cols(h, right_keys);
        }
        Operator::Aggregate {
            algo,
            funcs,
            agg_columns,
            group_by,
        } => {
            h.write(&[*algo as u8]);
            for f in funcs {
                h.write(&[*f as u8]);
            }
            hash_cols(h, agg_columns);
            hash_cols(h, group_by);
        }
        Operator::Sort { keys } => hash_cols(h, keys),
        Operator::TopN { keys, n } => {
            hash_cols(h, keys);
            h.write_u64(*n);
        }
        Operator::Exchange { kind, keys } => {
            h.write(&[*kind as u8]);
            hash_cols(h, keys);
        }
        Operator::Spool { shared_id } => h.write_u32(*shared_id),
        Operator::Limit { n } => h.write_u64(*n),
        Operator::Union | Operator::Sink => {}
    }
}

fn hash_cols(h: &mut Fnv, cols: &[u32]) {
    h.write_u32(cols.len() as u32);
    for &c in cols {
        h.write_u32(c);
    }
}

fn hash_pred(h: &mut Fnv, p: &Predicate) {
    match p {
        Predicate::Cmp {
            op,
            column,
            value,
            value2,
        } => {
            h.write(&[1, op.index() as u8]);
            h.write_u32(*column);
            h.write_u64(value.as_f64().to_bits());
            if let Some(v2) = value2 {
                h.write_u64(v2.as_f64().to_bits());
            }
        }
        Predicate::And(a, b) => {
            h.write(&[2]);
            hash_pred(h, a);
            hash_pred(h, b);
        }
        Predicate::Or(a, b) => {
            h.write(&[3]);
            hash_pred(h, a);
            hash_pred(h, b);
        }
        Predicate::Not(a) => {
            h.write(&[4]);
            hash_pred(h, a);
        }
        Predicate::True => h.write(&[5]),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpFn, Literal};
    use crate::op::{ExchangeKind, JoinAlgo, JoinKind};

    fn plan(algo: JoinAlgo) -> PlanTree {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        let b = t.leaf(Operator::table_scan(1, 1, 1, vec![1]));
        let ea = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![0]), a);
        let eb = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![1]), b);
        let j = t.binary(
            Operator::join(JoinKind::Inner, algo, vec![0], vec![1]),
            ea,
            eb,
        );
        t.set_root(j);
        t
    }

    #[test]
    fn identical_plans_share_a_signature() {
        assert_eq!(
            PlanSignature::of(&plan(JoinAlgo::Hash)),
            PlanSignature::of(&plan(JoinAlgo::Hash))
        );
    }

    #[test]
    fn different_join_algorithms_differ() {
        assert_ne!(
            PlanSignature::of(&plan(JoinAlgo::Hash)),
            PlanSignature::of(&plan(JoinAlgo::Merge))
        );
    }

    #[test]
    fn predicate_constants_affect_signature() {
        let mk = |v: i64| {
            let mut t = PlanTree::new();
            let a = t.leaf(Operator::TableScan {
                table: 0,
                partitions_accessed: 1,
                partitions_total: 1,
                columns: vec![0],
                predicate: Predicate::cmp(CmpFn::Eq, 0, Literal::Int(v)),
            });
            t.set_root(a);
            PlanSignature::of(&t)
        };
        assert_ne!(mk(1), mk(2));
    }

    #[test]
    fn seeded_hashes_are_decorrelated() {
        // Different seeds should give (almost always) different buckets.
        let buckets: Vec<u64> = (0..5)
            .map(|s| fnv1a_seeded(s, b"some_table_name") % 10)
            .collect();
        let distinct: std::collections::HashSet<_> = buckets.iter().collect();
        assert!(distinct.len() >= 2, "seeds should decorrelate: {buckets:?}");
    }

    #[test]
    fn fnv_is_stable_across_calls() {
        assert_eq!(fnv1a(b"loam"), fnv1a(b"loam"));
        assert_ne!(fnv1a(b"loam"), fnv1a(b"maol"));
    }
}
