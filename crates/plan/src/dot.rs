//! Graphviz (DOT) export of plans and stage graphs — handy when debugging
//! optimizer rewrites or inspecting what a steering knob changed.

use crate::display::describe;
use crate::stage::StageGraph;
use crate::tree::PlanTree;
use std::fmt::Write as _;

/// Renders `plan` as a Graphviz digraph, edges pointing from children to
/// parents (data-flow direction).
///
/// ```
/// use mcsim_plan::{Operator, PlanTree};
/// let mut t = PlanTree::new();
/// let s = t.leaf(Operator::table_scan(1, 1, 1, vec![0]));
/// let k = t.unary(Operator::Sink, s);
/// t.set_root(k);
/// let dot = mcsim_plan::dot::plan_to_dot(&t);
/// assert!(dot.starts_with("digraph plan"));
/// assert!(dot.contains("TableScan"));
/// ```
pub fn plan_to_dot(plan: &PlanTree) -> String {
    let mut out = String::from("digraph plan {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n");
    for (id, node) in plan.iter() {
        let label = describe(&node.op).replace('"', "'");
        let _ = writeln!(out, "  n{id} [label=\"{label}\"];");
        for c in node.children() {
            let _ = writeln!(out, "  n{c} -> n{id};");
        }
    }
    out.push_str("}\n");
    out
}

/// Renders a plan and its stage decomposition: nodes are clustered per
/// stage, so shuffle boundaries are visible at a glance.
pub fn stages_to_dot(plan: &PlanTree, stages: &StageGraph) -> String {
    let mut out =
        String::from("digraph stages {\n  rankdir=BT;\n  node [shape=box, fontsize=10];\n");
    for (sid, stage) in stages.stages.iter().enumerate() {
        let _ = writeln!(out, "  subgraph cluster_{sid} {{");
        let _ = writeln!(out, "    label=\"stage {sid}\";");
        for &n in &stage.nodes {
            let label = describe(plan.op(n)).replace('"', "'");
            let _ = writeln!(out, "    n{n} [label=\"{label}\"];");
        }
        out.push_str("  }\n");
    }
    for (id, node) in plan.iter() {
        for c in node.children() {
            let _ = writeln!(out, "  n{c} -> n{id};");
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ExchangeKind, JoinAlgo, JoinKind, Operator};
    use crate::stage::decompose;

    fn plan() -> PlanTree {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        let b = t.leaf(Operator::table_scan(1, 1, 1, vec![1]));
        let ea = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![0]), a);
        let eb = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![1]), b);
        let j = t.binary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]),
            ea,
            eb,
        );
        t.set_root(j);
        t
    }

    #[test]
    fn dot_contains_every_node_and_edge() {
        let p = plan();
        let dot = plan_to_dot(&p);
        for (id, node) in p.iter() {
            assert!(dot.contains(&format!("n{id} [label=")));
            for c in node.children() {
                assert!(dot.contains(&format!("n{c} -> n{id};")));
            }
        }
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn stage_dot_clusters_every_stage() {
        let p = plan();
        let g = decompose(&p);
        let dot = stages_to_dot(&p, &g);
        for sid in 0..g.len() {
            assert!(dot.contains(&format!("subgraph cluster_{sid}")));
        }
        // All nodes present exactly once as declarations.
        for (id, _) in p.iter() {
            assert_eq!(dot.matches(&format!("n{id} [label=")).count(), 1);
        }
    }

    #[test]
    fn quotes_are_escaped() {
        let mut t = PlanTree::new();
        let s = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        t.set_root(s);
        let dot = plan_to_dot(&t);
        assert!(!dot.contains("\\\""));
    }
}
