//! Arena-based plan trees.
//!
//! Plans are canonical binary trees (footnote 1 of the paper): every node has
//! at most two children. Nodes live in an arena indexed by [`NodeId`] so that
//! downstream annotations (cardinalities, stage membership, feature vectors)
//! can be stored in parallel `Vec`s.

use crate::op::Operator;
use serde::{Deserialize, Serialize};

/// Index of a node within a [`PlanTree`] arena.
pub type NodeId = usize;

/// One node of a plan tree: an operator plus child links.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct PlanNode {
    /// The operator at this node.
    pub op: Operator,
    /// Left (or only) child, if any.
    pub left: Option<NodeId>,
    /// Right child, if any (only binary operators have one).
    pub right: Option<NodeId>,
}

impl PlanNode {
    /// Child ids in left-to-right order.
    pub fn children(&self) -> impl Iterator<Item = NodeId> + '_ {
        self.left.into_iter().chain(self.right)
    }
}

/// A physical query plan: a canonical binary tree of [`Operator`]s.
///
/// # Example
///
/// ```
/// use mcsim_plan::{Operator, PlanTree};
///
/// let mut t = PlanTree::new();
/// let scan = t.leaf(Operator::table_scan(7, 1, 1, vec![0]));
/// let sink = t.unary(Operator::Sink, scan);
/// t.set_root(sink);
/// assert_eq!(t.len(), 2);
/// assert!(t.validate().is_ok());
/// ```
#[derive(Debug, Clone, PartialEq, Default, Serialize, Deserialize)]
pub struct PlanTree {
    nodes: Vec<PlanNode>,
    root: Option<NodeId>,
}

/// Error returned by [`PlanTree::validate`] when the tree is malformed.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum ValidatePlanError {
    /// The tree has no root set.
    MissingRoot,
    /// A child id points outside the arena.
    DanglingChild {
        /// Offending parent node.
        node: NodeId,
    },
    /// An operator has the wrong number of children for its arity.
    WrongArity {
        /// Offending node.
        node: NodeId,
        /// Children the operator requires.
        expected: usize,
        /// Children it actually has.
        actual: usize,
    },
    /// A node is referenced as a child by more than one parent, or the root
    /// is referenced as a child (the "tree" is really a DAG or cyclic).
    NotATree {
        /// Offending node.
        node: NodeId,
    },
}

impl std::fmt::Display for ValidatePlanError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ValidatePlanError::MissingRoot => write!(f, "plan has no root"),
            ValidatePlanError::DanglingChild { node } => {
                write!(f, "node {node} references a child outside the arena")
            }
            ValidatePlanError::WrongArity {
                node,
                expected,
                actual,
            } => write!(
                f,
                "node {node} has {actual} children but its operator requires {expected}"
            ),
            ValidatePlanError::NotATree { node } => {
                write!(f, "node {node} has multiple parents or forms a cycle")
            }
        }
    }
}

impl std::error::Error for ValidatePlanError {}

impl PlanTree {
    /// Creates an empty plan.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of nodes in the arena.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// True if the plan has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// The root node id.
    ///
    /// # Panics
    ///
    /// Panics if no root has been set; use [`PlanTree::try_root`] to handle
    /// the empty case.
    pub fn root(&self) -> NodeId {
        self.root.expect("plan has no root")
    }

    /// The root node id, if one has been set.
    pub fn try_root(&self) -> Option<NodeId> {
        self.root
    }

    /// Marks `id` as the root of the plan.
    pub fn set_root(&mut self, id: NodeId) {
        debug_assert!(id < self.nodes.len());
        self.root = Some(id);
    }

    /// Adds a leaf node (no children) and returns its id.
    pub fn leaf(&mut self, op: Operator) -> NodeId {
        self.push(op, None, None)
    }

    /// Adds a unary node over `child` and returns its id.
    pub fn unary(&mut self, op: Operator, child: NodeId) -> NodeId {
        self.push(op, Some(child), None)
    }

    /// Adds a binary node over `left` and `right` and returns its id.
    pub fn binary(&mut self, op: Operator, left: NodeId, right: NodeId) -> NodeId {
        self.push(op, Some(left), Some(right))
    }

    fn push(&mut self, op: Operator, left: Option<NodeId>, right: Option<NodeId>) -> NodeId {
        let id = self.nodes.len();
        self.nodes.push(PlanNode { op, left, right });
        id
    }

    /// Borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node(&self, id: NodeId) -> &PlanNode {
        &self.nodes[id]
    }

    /// Mutably borrow a node.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of bounds.
    pub fn node_mut(&mut self, id: NodeId) -> &mut PlanNode {
        &mut self.nodes[id]
    }

    /// Borrow a node's operator.
    pub fn op(&self, id: NodeId) -> &Operator {
        &self.nodes[id].op
    }

    /// All nodes in arena order (not traversal order).
    pub fn iter(&self) -> impl Iterator<Item = (NodeId, &PlanNode)> {
        self.nodes.iter().enumerate()
    }

    /// Node ids in post-order (children before parents), starting at the root.
    ///
    /// This is the evaluation order used by the executor and the order in
    /// which tree convolution aggregates information upward.
    pub fn postorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        if let Some(root) = self.root {
            // Iterative post-order with an explicit visit flag to avoid
            // recursion limits on deep plans.
            let mut stack = vec![(root, false)];
            while let Some((id, expanded)) = stack.pop() {
                if expanded {
                    out.push(id);
                } else {
                    stack.push((id, true));
                    let n = &self.nodes[id];
                    if let Some(r) = n.right {
                        stack.push((r, false));
                    }
                    if let Some(l) = n.left {
                        stack.push((l, false));
                    }
                }
            }
        }
        out
    }

    /// Node ids in pre-order (parents before children), starting at the root.
    pub fn preorder(&self) -> Vec<NodeId> {
        let mut out = Vec::with_capacity(self.nodes.len());
        if let Some(root) = self.root {
            let mut stack = vec![root];
            while let Some(id) = stack.pop() {
                out.push(id);
                let n = &self.nodes[id];
                if let Some(r) = n.right {
                    stack.push(r);
                }
                if let Some(l) = n.left {
                    stack.push(l);
                }
            }
        }
        out
    }

    /// Depth of the tree (root-only tree has depth 1; empty tree depth 0).
    pub fn depth(&self) -> usize {
        fn rec(t: &PlanTree, id: NodeId) -> usize {
            let n = t.node(id);
            1 + n.children().map(|c| rec(t, c)).max().unwrap_or(0)
        }
        self.root.map(|r| rec(self, r)).unwrap_or(0)
    }

    /// Parent of each node (`None` for the root), computed by a full scan.
    pub fn parents(&self) -> Vec<Option<NodeId>> {
        let mut parents = vec![None; self.nodes.len()];
        for (id, n) in self.nodes.iter().enumerate() {
            for c in n.children() {
                parents[c] = Some(id);
            }
        }
        parents
    }

    /// Counts operators matching `pred`.
    pub fn count_ops<F: Fn(&Operator) -> bool>(&self, pred: F) -> usize {
        self.preorder()
            .into_iter()
            .filter(|&id| pred(&self.nodes[id].op))
            .count()
    }

    /// Checks structural invariants: a root exists, children are in-bounds,
    /// arities match, and every reachable node has exactly one parent.
    ///
    /// # Errors
    ///
    /// Returns the first [`ValidatePlanError`] found.
    pub fn validate(&self) -> Result<(), ValidatePlanError> {
        let root = self.root.ok_or(ValidatePlanError::MissingRoot)?;
        let mut seen = vec![false; self.nodes.len()];
        let mut stack = vec![root];
        seen[root] = true;
        while let Some(id) = stack.pop() {
            let n = &self.nodes[id];
            let actual = n.children().count();
            let expected = n.op.arity();
            if actual != expected {
                return Err(ValidatePlanError::WrongArity {
                    node: id,
                    expected,
                    actual,
                });
            }
            for c in n.children() {
                if c >= self.nodes.len() {
                    return Err(ValidatePlanError::DanglingChild { node: id });
                }
                if seen[c] || c == root {
                    return Err(ValidatePlanError::NotATree { node: c });
                }
                seen[c] = true;
                stack.push(c);
            }
        }
        Ok(())
    }

    /// Rebuilds the tree keeping only nodes reachable from the root,
    /// renumbering ids into post-order. Useful after rewrites that orphan
    /// nodes.
    pub fn compact(&self) -> PlanTree {
        let mut out = PlanTree::new();
        if self.root.is_none() {
            return out;
        }
        let order = self.postorder();
        let mut remap = vec![usize::MAX; self.nodes.len()];
        for id in order {
            let n = &self.nodes[id];
            let left = n.left.map(|c| remap[c]);
            let right = n.right.map(|c| remap[c]);
            let new_id = out.push(n.op.clone(), left, right);
            remap[id] = new_id;
        }
        out.set_root(remap[self.root.unwrap()]);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ExchangeKind, JoinAlgo, JoinKind};

    fn small_plan() -> PlanTree {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        let b = t.leaf(Operator::table_scan(1, 1, 1, vec![1]));
        let ea = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![0]), a);
        let eb = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![1]), b);
        let j = t.binary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]),
            ea,
            eb,
        );
        let s = t.unary(Operator::Sink, j);
        t.set_root(s);
        t
    }

    #[test]
    fn postorder_visits_children_first() {
        let t = small_plan();
        let order = t.postorder();
        let pos: Vec<usize> = (0..t.len())
            .map(|id| order.iter().position(|&x| x == id).unwrap())
            .collect();
        for (id, n) in t.iter() {
            for c in n.children() {
                assert!(pos[c] < pos[id], "child {c} must precede parent {id}");
            }
        }
        assert_eq!(order.len(), t.len());
    }

    #[test]
    fn preorder_visits_parents_first() {
        let t = small_plan();
        let order = t.preorder();
        let pos: Vec<usize> = (0..t.len())
            .map(|id| order.iter().position(|&x| x == id).unwrap())
            .collect();
        for (id, n) in t.iter() {
            for c in n.children() {
                assert!(pos[c] > pos[id]);
            }
        }
    }

    #[test]
    fn validate_accepts_well_formed() {
        assert!(small_plan().validate().is_ok());
    }

    #[test]
    fn validate_rejects_missing_root() {
        let t = PlanTree::new();
        assert_eq!(t.validate(), Err(ValidatePlanError::MissingRoot));
    }

    #[test]
    fn validate_rejects_wrong_arity() {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        // Join requires two children but gets one.
        let j = t.unary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]),
            a,
        );
        t.set_root(j);
        assert!(matches!(
            t.validate(),
            Err(ValidatePlanError::WrongArity {
                expected: 2,
                actual: 1,
                ..
            })
        ));
    }

    #[test]
    fn validate_rejects_shared_child() {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        let j = t.binary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![0]),
            a,
            a,
        );
        t.set_root(j);
        assert!(matches!(
            t.validate(),
            Err(ValidatePlanError::NotATree { .. })
        ));
    }

    #[test]
    fn parents_inverse_of_children() {
        let t = small_plan();
        let parents = t.parents();
        for (id, n) in t.iter() {
            for c in n.children() {
                assert_eq!(parents[c], Some(id));
            }
        }
        assert_eq!(parents[t.root()], None);
    }

    #[test]
    fn compact_preserves_structure_and_drops_orphans() {
        let mut t = small_plan();
        // Add an orphan node not reachable from the root.
        t.leaf(Operator::table_scan(9, 1, 1, vec![9]));
        let c = t.compact();
        assert_eq!(c.len(), 6);
        assert!(c.validate().is_ok());
        assert_eq!(c.depth(), t.depth());
        assert_eq!(
            c.count_ops(|o| matches!(o, Operator::Join { .. })),
            t.count_ops(|o| matches!(o, Operator::Join { .. }))
        );
    }

    #[test]
    fn depth_of_chain() {
        let mut t = PlanTree::new();
        let mut cur = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        for _ in 0..5 {
            cur = t.unary(Operator::Limit { n: 10 }, cur);
        }
        t.set_root(cur);
        assert_eq!(t.depth(), 6);
    }
}
