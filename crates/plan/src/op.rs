//! Physical plan operators.
//!
//! MaxCompute supports ~30 operator types; LOAM encodes the classes that are
//! most frequently used and cost-impacting (Section 4). This module defines
//! the simulator's operator algebra along with a dense [`OpType`] index used
//! for one-hot encodings.

use crate::expr::Predicate;
use crate::{ColumnId, TableId};
use serde::{Deserialize, Serialize};

/// Logical join form (paper: "a one-hot vector for the join form").
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum JoinKind {
    Inner = 0,
    LeftOuter = 1,
    RightOuter = 2,
    FullOuter = 3,
    Semi = 4,
    Anti = 5,
}

impl JoinKind {
    /// Number of join forms (one-hot width).
    pub const COUNT: usize = 6;

    /// Stable one-hot index.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Physical join implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum JoinAlgo {
    /// Build a hash table on the smaller input, probe with the larger.
    Hash = 0,
    /// Sort both inputs (if needed) and merge.
    Merge = 1,
    /// Replicate the small input to every instance of the large input.
    Broadcast = 2,
    /// Nested loops; only sensible for tiny inputs or non-equi conditions.
    NestedLoop = 3,
}

impl JoinAlgo {
    /// Number of join implementations.
    pub const COUNT: usize = 4;
}

/// Aggregation function (paper: SUM, COUNT, …).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AggFunc {
    Sum = 0,
    Count = 1,
    Min = 2,
    Max = 3,
    Avg = 4,
    CountDistinct = 5,
}

impl AggFunc {
    /// Number of aggregation functions (one-hot width).
    pub const COUNT: usize = 6;

    /// Stable one-hot index.
    pub fn index(self) -> usize {
        self as usize
    }
}

/// Physical aggregation implementation.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum AggAlgo {
    /// Hash table keyed by the group-by columns.
    Hash = 0,
    /// Sort by the group-by columns, then scan.
    Sort = 1,
}

/// How an [`Operator::Exchange`] reshuffles data across machines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum ExchangeKind {
    /// Hash-partition rows on a key so equal keys land on the same instance.
    HashPartition = 0,
    /// Range-partition rows (for sorts / merge joins).
    RangePartition = 1,
    /// Replicate all rows to every consumer instance.
    Broadcast = 2,
    /// Gather all rows to a single instance.
    Gather = 3,
}

/// A physical plan operator.
///
/// Each node of a [`crate::PlanTree`] holds one `Operator`. Attributes mirror
/// the pieces LOAM encodes: accessed tables/partitions/columns for scans,
/// join form and key columns for joins, functions and key columns for
/// aggregations, and function/column sets for filters (Section 4, Figure 4).
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Operator {
    /// Scan (part of) a partitioned table, optionally with a pushed-down
    /// predicate used for partition pruning.
    TableScan {
        /// The scanned table.
        table: TableId,
        /// Number of partitions actually read (after pruning).
        partitions_accessed: u32,
        /// Total number of partitions in the table.
        partitions_total: u32,
        /// Columns projected out of the scan.
        columns: Vec<ColumnId>,
        /// Pushed-down predicate, if filter pushdown was applied.
        predicate: Predicate,
    },
    /// Standalone row filter.
    Filter {
        /// The predicate rows must satisfy.
        predicate: Predicate,
    },
    /// Combined filter + projection (MaxCompute's `Calc`).
    Calc {
        /// The predicate rows must satisfy.
        predicate: Predicate,
        /// Columns retained by the projection part.
        columns: Vec<ColumnId>,
    },
    /// Pure projection.
    Project {
        /// Columns retained.
        columns: Vec<ColumnId>,
    },
    /// Binary equi-join.
    Join {
        /// Logical join form.
        kind: JoinKind,
        /// Physical implementation.
        algo: JoinAlgo,
        /// Join key columns of the left input.
        left_keys: Vec<ColumnId>,
        /// Join key columns of the right input.
        right_keys: Vec<ColumnId>,
    },
    /// Grouping aggregation.
    Aggregate {
        /// Physical implementation.
        algo: AggAlgo,
        /// Aggregation functions applied.
        funcs: Vec<AggFunc>,
        /// Columns being aggregated (parallel to `funcs`).
        agg_columns: Vec<ColumnId>,
        /// Group-by key columns (empty for a scalar aggregate).
        group_by: Vec<ColumnId>,
    },
    /// Full sort.
    Sort {
        /// Sort key columns.
        keys: Vec<ColumnId>,
    },
    /// Sort + limit fused.
    TopN {
        /// Sort key columns.
        keys: Vec<ColumnId>,
        /// Number of rows retained.
        n: u64,
    },
    /// Data reshuffle across machines — the stage boundary.
    Exchange {
        /// Reshuffle style.
        kind: ExchangeKind,
        /// Partitioning key columns (empty for broadcast/gather).
        keys: Vec<ColumnId>,
    },
    /// Materialize the child once and share it with several consumers.
    Spool {
        /// Identifier linking spool producers with reuse points.
        shared_id: u32,
    },
    /// Bag union of both children.
    Union,
    /// Row-count limit.
    Limit {
        /// Number of rows retained.
        n: u64,
    },
    /// Terminal sink writing the query result.
    Sink,
}

/// Dense operator-type index used for one-hot encodings.
///
/// Physical implementation variants get distinct indices (a `HashJoin` and a
/// `MergeJoin` are different operator types to the model, exactly as in
/// Figure 4 of the paper where `TableScan` and `MergeJoin` occupy different
/// one-hot positions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum OpType {
    TableScan = 0,
    Filter = 1,
    Calc = 2,
    Project = 3,
    HashJoin = 4,
    MergeJoin = 5,
    BroadcastJoin = 6,
    NestedLoopJoin = 7,
    HashAggregate = 8,
    SortAggregate = 9,
    Sort = 10,
    TopN = 11,
    ExchangeHash = 12,
    ExchangeRange = 13,
    ExchangeBroadcast = 14,
    ExchangeGather = 15,
    Spool = 16,
    Union = 17,
    Limit = 18,
    Sink = 19,
}

/// Number of distinct [`OpType`]s (width of the operator one-hot block).
pub const OP_TYPE_COUNT: usize = 20;

impl OpType {
    /// Stable one-hot index.
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short mnemonic used in plan displays and in the Ranker's
    /// parent/child pattern encoding (Appendix D.2).
    pub fn mnemonic(self) -> &'static str {
        match self {
            OpType::TableScan => "TS",
            OpType::Filter => "FIL",
            OpType::Calc => "CALC",
            OpType::Project => "PRJ",
            OpType::HashJoin => "HJ",
            OpType::MergeJoin => "MJ",
            OpType::BroadcastJoin => "BJ",
            OpType::NestedLoopJoin => "NLJ",
            OpType::HashAggregate => "HA",
            OpType::SortAggregate => "SA",
            OpType::Sort => "SRT",
            OpType::TopN => "TOPN",
            OpType::ExchangeHash => "EXH",
            OpType::ExchangeRange => "EXR",
            OpType::ExchangeBroadcast => "EXB",
            OpType::ExchangeGather => "EXG",
            OpType::Spool => "SPL",
            OpType::Union => "UNI",
            OpType::Limit => "LIM",
            OpType::Sink => "SNK",
        }
    }
}

impl Operator {
    /// Convenience constructor for an unfiltered table scan.
    pub fn table_scan(
        table: TableId,
        partitions_accessed: u32,
        partitions_total: u32,
        columns: Vec<ColumnId>,
    ) -> Self {
        Operator::TableScan {
            table,
            partitions_accessed,
            partitions_total,
            columns,
            predicate: Predicate::True,
        }
    }

    /// Convenience constructor for a join.
    pub fn join(
        kind: JoinKind,
        algo: JoinAlgo,
        left_keys: Vec<ColumnId>,
        right_keys: Vec<ColumnId>,
    ) -> Self {
        Operator::Join {
            kind,
            algo,
            left_keys,
            right_keys,
        }
    }

    /// Convenience constructor for an exchange.
    pub fn exchange(kind: ExchangeKind, keys: Vec<ColumnId>) -> Self {
        Operator::Exchange { kind, keys }
    }

    /// The dense operator-type classification of this operator.
    pub fn op_type(&self) -> OpType {
        match self {
            Operator::TableScan { .. } => OpType::TableScan,
            Operator::Filter { .. } => OpType::Filter,
            Operator::Calc { .. } => OpType::Calc,
            Operator::Project { .. } => OpType::Project,
            Operator::Join { algo, .. } => match algo {
                JoinAlgo::Hash => OpType::HashJoin,
                JoinAlgo::Merge => OpType::MergeJoin,
                JoinAlgo::Broadcast => OpType::BroadcastJoin,
                JoinAlgo::NestedLoop => OpType::NestedLoopJoin,
            },
            Operator::Aggregate { algo, .. } => match algo {
                AggAlgo::Hash => OpType::HashAggregate,
                AggAlgo::Sort => OpType::SortAggregate,
            },
            Operator::Sort { .. } => OpType::Sort,
            Operator::TopN { .. } => OpType::TopN,
            Operator::Exchange { kind, .. } => match kind {
                ExchangeKind::HashPartition => OpType::ExchangeHash,
                ExchangeKind::RangePartition => OpType::ExchangeRange,
                ExchangeKind::Broadcast => OpType::ExchangeBroadcast,
                ExchangeKind::Gather => OpType::ExchangeGather,
            },
            Operator::Spool { .. } => OpType::Spool,
            Operator::Union => OpType::Union,
            Operator::Limit { .. } => OpType::Limit,
            Operator::Sink => OpType::Sink,
        }
    }

    /// Number of children this operator must have in a well-formed plan.
    pub fn arity(&self) -> usize {
        match self {
            Operator::TableScan { .. } => 0,
            Operator::Join { .. } | Operator::Union => 2,
            _ => 1,
        }
    }

    /// True for exchange operators, which delimit execution stages.
    pub fn is_stage_boundary(&self) -> bool {
        matches!(self, Operator::Exchange { .. })
    }

    /// All columns referenced by this operator's attributes (keys,
    /// projections, predicate columns). Used by LOAM's hash encoder.
    pub fn referenced_columns(&self) -> Vec<ColumnId> {
        match self {
            Operator::TableScan {
                columns, predicate, ..
            } => {
                let mut c = columns.clone();
                c.extend(predicate.columns());
                c
            }
            Operator::Filter { predicate } => predicate.columns(),
            Operator::Calc { predicate, columns } => {
                let mut c = predicate.columns();
                c.extend(columns.iter().copied());
                c
            }
            Operator::Project { columns } => columns.clone(),
            Operator::Join {
                left_keys,
                right_keys,
                ..
            } => left_keys.iter().chain(right_keys).copied().collect(),
            Operator::Aggregate {
                agg_columns,
                group_by,
                ..
            } => agg_columns.iter().chain(group_by).copied().collect(),
            Operator::Sort { keys } | Operator::TopN { keys, .. } => keys.clone(),
            Operator::Exchange { keys, .. } => keys.clone(),
            Operator::Spool { .. } | Operator::Union | Operator::Limit { .. } | Operator::Sink => {
                Vec::new()
            }
        }
    }

    /// The predicate attached to this operator, if it filters rows.
    pub fn predicate(&self) -> Option<&Predicate> {
        match self {
            Operator::TableScan { predicate, .. }
            | Operator::Filter { predicate }
            | Operator::Calc { predicate, .. } => Some(predicate),
            _ => None,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::expr::{CmpFn, Literal};

    #[test]
    fn op_type_indices_are_dense() {
        use OpType::*;
        let all = [
            TableScan,
            Filter,
            Calc,
            Project,
            HashJoin,
            MergeJoin,
            BroadcastJoin,
            NestedLoopJoin,
            HashAggregate,
            SortAggregate,
            Sort,
            TopN,
            ExchangeHash,
            ExchangeRange,
            ExchangeBroadcast,
            ExchangeGather,
            Spool,
            Union,
            Limit,
            Sink,
        ];
        assert_eq!(all.len(), OP_TYPE_COUNT);
        for (i, t) in all.iter().enumerate() {
            assert_eq!(t.index(), i);
        }
    }

    #[test]
    fn join_algo_determines_op_type() {
        let j = Operator::join(JoinKind::Inner, JoinAlgo::Merge, vec![1], vec![2]);
        assert_eq!(j.op_type(), OpType::MergeJoin);
        assert_eq!(j.arity(), 2);
    }

    #[test]
    fn scan_references_projection_and_predicate_columns() {
        let scan = Operator::TableScan {
            table: 0,
            partitions_accessed: 1,
            partitions_total: 4,
            columns: vec![10, 11],
            predicate: Predicate::cmp(CmpFn::Eq, 12, Literal::Int(5)),
        };
        assert_eq!(scan.referenced_columns(), vec![10, 11, 12]);
        assert_eq!(scan.arity(), 0);
    }

    #[test]
    fn exchange_is_a_stage_boundary() {
        assert!(Operator::exchange(ExchangeKind::Gather, vec![]).is_stage_boundary());
        assert!(!Operator::Sink.is_stage_boundary());
    }

    #[test]
    fn mnemonics_are_unique() {
        use std::collections::HashSet;
        let set: HashSet<_> = (0..OP_TYPE_COUNT)
            .map(|i| {
                // round-trip through the enum by matching on index
                let all = [
                    OpType::TableScan,
                    OpType::Filter,
                    OpType::Calc,
                    OpType::Project,
                    OpType::HashJoin,
                    OpType::MergeJoin,
                    OpType::BroadcastJoin,
                    OpType::NestedLoopJoin,
                    OpType::HashAggregate,
                    OpType::SortAggregate,
                    OpType::Sort,
                    OpType::TopN,
                    OpType::ExchangeHash,
                    OpType::ExchangeRange,
                    OpType::ExchangeBroadcast,
                    OpType::ExchangeGather,
                    OpType::Spool,
                    OpType::Union,
                    OpType::Limit,
                    OpType::Sink,
                ];
                all[i].mnemonic()
            })
            .collect();
        assert_eq!(set.len(), OP_TYPE_COUNT);
    }
}
