//! Human-readable plan rendering.

use crate::op::Operator;
use crate::tree::{NodeId, PlanTree};
use std::fmt::Write as _;

/// Renders `plan` as an indented operator tree, one node per line.
///
/// ```
/// use mcsim_plan::{Operator, PlanTree};
/// let mut t = PlanTree::new();
/// let s = t.leaf(Operator::table_scan(3, 2, 4, vec![1]));
/// let k = t.unary(Operator::Sink, s);
/// t.set_root(k);
/// let text = mcsim_plan::display::render(&t);
/// assert!(text.contains("TableScan"));
/// ```
pub fn render(plan: &PlanTree) -> String {
    let mut out = String::new();
    if let Some(root) = plan.try_root() {
        render_node(plan, root, 0, &mut out);
    }
    out
}

fn render_node(plan: &PlanTree, id: NodeId, indent: usize, out: &mut String) {
    for _ in 0..indent {
        out.push_str("  ");
    }
    let _ = writeln!(out, "{}", describe(plan.op(id)));
    let n = plan.node(id);
    for c in n.children() {
        render_node(plan, c, indent + 1, out);
    }
}

/// One-line description of an operator.
pub fn describe(op: &Operator) -> String {
    match op {
        Operator::TableScan {
            table,
            partitions_accessed,
            partitions_total,
            columns,
            predicate,
        } => {
            if predicate.is_true() {
                format!(
                    "TableScan(t{table}, parts {partitions_accessed}/{partitions_total}, {} cols)",
                    columns.len()
                )
            } else {
                format!(
                    "TableScan(t{table}, parts {partitions_accessed}/{partitions_total}, {} cols, {predicate})",
                    columns.len()
                )
            }
        }
        Operator::Filter { predicate } => format!("Filter({predicate})"),
        Operator::Calc { predicate, columns } => {
            format!("Calc({predicate}, {} cols)", columns.len())
        }
        Operator::Project { columns } => format!("Project({} cols)", columns.len()),
        Operator::Join {
            kind,
            algo,
            left_keys,
            right_keys,
        } => format!(
            "{:?}Join[{:?}]({:?} = {:?})",
            algo, kind, left_keys, right_keys
        ),
        Operator::Aggregate {
            algo,
            funcs,
            group_by,
            ..
        } => format!("{:?}Aggregate({:?} by {:?})", algo, funcs, group_by),
        Operator::Sort { keys } => format!("Sort({:?})", keys),
        Operator::TopN { keys, n } => format!("TopN({:?}, {n})", keys),
        Operator::Exchange { kind, keys } => format!("Exchange[{:?}]({:?})", kind, keys),
        Operator::Spool { shared_id } => format!("Spool(#{shared_id})"),
        Operator::Union => "Union".to_string(),
        Operator::Limit { n } => format!("Limit({n})"),
        Operator::Sink => "Sink".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{JoinAlgo, JoinKind};

    #[test]
    fn render_indents_children() {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        let b = t.leaf(Operator::table_scan(1, 1, 1, vec![1]));
        let j = t.binary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]),
            a,
            b,
        );
        t.set_root(j);
        let s = render(&t);
        let lines: Vec<&str> = s.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].starts_with("HashJoin"));
        assert!(lines[1].starts_with("  TableScan"));
    }

    #[test]
    fn empty_plan_renders_empty() {
        assert_eq!(render(&PlanTree::new()), "");
    }
}
