//! Execution-plan decomposition into stages.
//!
//! MaxCompute decomposes a physical plan into a tree of stages at operators
//! requiring data reshuffling (Section 2.1). Each stage is a sequence of
//! connected operators executed as an intra-machine pipeline; edges in the
//! stage tree are data dependencies. The resource manager treats each stage
//! as the atomic unit of allocation, and all plan nodes within a stage run on
//! the same set of allocated machines — which is why LOAM's environment
//! features are observed at stage granularity.

use crate::op::Operator;
use crate::tree::{NodeId, PlanTree};
use serde::{Deserialize, Serialize};

/// Index of a stage within a [`StageGraph`].
pub type StageId = usize;

/// One execution stage: a maximal exchange-free pipeline of plan nodes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Stage {
    /// Plan nodes belonging to this stage, in post-order within the stage.
    pub nodes: Vec<NodeId>,
    /// Stages this stage consumes data from (its children in the stage tree).
    pub inputs: Vec<StageId>,
    /// The exchange node (in the *parent* stage side) through which this
    /// stage's output flows, if this is not the root stage.
    pub output_exchange: Option<NodeId>,
}

/// The stage decomposition of a plan: a tree of [`Stage`]s.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct StageGraph {
    /// All stages; `stages[root]` is the stage containing the plan root.
    pub stages: Vec<Stage>,
    /// Index of the root stage.
    pub root: StageId,
    /// For each plan node, the stage it belongs to.
    pub stage_of_node: Vec<StageId>,
}

impl StageGraph {
    /// Stages in dependency order: every stage appears after all stages it
    /// consumes from, so iterating executes parents-last as the scheduler
    /// requires ("once all parent stages are complete, a stage becomes
    /// eligible").
    pub fn execution_order(&self) -> Vec<StageId> {
        let mut out = Vec::with_capacity(self.stages.len());
        let mut stack = vec![(self.root, false)];
        while let Some((s, expanded)) = stack.pop() {
            if expanded {
                out.push(s);
            } else {
                stack.push((s, true));
                for &i in &self.stages[s].inputs {
                    stack.push((i, false));
                }
            }
        }
        out
    }

    /// Number of stages.
    pub fn len(&self) -> usize {
        self.stages.len()
    }

    /// True if the graph has no stages (empty plan).
    pub fn is_empty(&self) -> bool {
        self.stages.is_empty()
    }
}

/// Decomposes `plan` into its stage tree.
///
/// An [`Operator::Exchange`] node is assigned to the *consumer* (parent)
/// stage — it represents the reading side of the shuffle — while its subtree
/// below becomes a separate producer stage. Leaf scans start fresh stages
/// only when separated from the root pipeline by an exchange.
///
/// # Panics
///
/// Panics if the plan has no root. Call [`PlanTree::validate`] first for
/// untrusted plans.
pub fn decompose(plan: &PlanTree) -> StageGraph {
    assert!(plan.try_root().is_some(), "cannot decompose an empty plan");
    let mut stages: Vec<Stage> = Vec::new();
    let mut stage_of_node = vec![usize::MAX; plan.len()];

    // Create the root stage and recursively assign nodes.
    let root_stage = new_stage(&mut stages);
    assign(
        plan,
        plan.root(),
        root_stage,
        &mut stages,
        &mut stage_of_node,
    );

    // Within each stage, order nodes in post-order for pipelined evaluation.
    let postorder = plan.postorder();
    let mut by_stage: Vec<Vec<NodeId>> = vec![Vec::new(); stages.len()];
    for id in postorder {
        by_stage[stage_of_node[id]].push(id);
    }
    for (s, nodes) in by_stage.into_iter().enumerate() {
        stages[s].nodes = nodes;
    }

    StageGraph {
        stages,
        root: root_stage,
        stage_of_node,
    }
}

fn new_stage(stages: &mut Vec<Stage>) -> StageId {
    stages.push(Stage {
        nodes: Vec::new(),
        inputs: Vec::new(),
        output_exchange: None,
    });
    stages.len() - 1
}

fn assign(
    plan: &PlanTree,
    node: NodeId,
    stage: StageId,
    stages: &mut Vec<Stage>,
    stage_of_node: &mut [StageId],
) {
    stage_of_node[node] = stage;
    let n = plan.node(node);
    let is_exchange = matches!(n.op, Operator::Exchange { .. });
    for child in n.children() {
        if is_exchange {
            // The subtree under an exchange is a new producer stage.
            let child_stage = new_stage(stages);
            stages[child_stage].output_exchange = Some(node);
            stages[stage].inputs.push(child_stage);
            assign(plan, child, child_stage, stages, stage_of_node);
        } else {
            assign(plan, child, stage, stages, stage_of_node);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::op::{ExchangeKind, JoinAlgo, JoinKind};

    /// scan(A) -> EX -> \
    ///                    HJ -> agg -> sink
    /// scan(B) -> EX -> /
    fn join_plan() -> PlanTree {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        let b = t.leaf(Operator::table_scan(1, 1, 1, vec![1]));
        let ea = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![0]), a);
        let eb = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![1]), b);
        let j = t.binary(
            Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![1]),
            ea,
            eb,
        );
        let s = t.unary(Operator::Sink, j);
        t.set_root(s);
        t
    }

    #[test]
    fn join_plan_has_three_stages() {
        let t = join_plan();
        let g = decompose(&t);
        assert_eq!(g.len(), 3);
        // Root stage contains sink, join, and both exchanges (reader side).
        assert_eq!(g.stages[g.root].nodes.len(), 4);
        // Each producer stage holds exactly one scan.
        for (s, stage) in g.stages.iter().enumerate() {
            if s != g.root {
                assert_eq!(stage.nodes.len(), 1);
                assert!(matches!(t.op(stage.nodes[0]), Operator::TableScan { .. }));
            }
        }
    }

    #[test]
    fn every_node_in_exactly_one_stage() {
        let t = join_plan();
        let g = decompose(&t);
        let mut counts = vec![0usize; t.len()];
        for stage in &g.stages {
            for &n in &stage.nodes {
                counts[n] += 1;
            }
        }
        assert!(counts.iter().all(|&c| c == 1));
    }

    #[test]
    fn execution_order_respects_dependencies() {
        let t = join_plan();
        let g = decompose(&t);
        let order = g.execution_order();
        assert_eq!(order.len(), g.len());
        let pos: Vec<usize> = (0..g.len())
            .map(|s| order.iter().position(|&x| x == s).unwrap())
            .collect();
        for (s, stage) in g.stages.iter().enumerate() {
            for &i in &stage.inputs {
                assert!(pos[i] < pos[s], "producer {i} must run before consumer {s}");
            }
        }
        assert_eq!(*order.last().unwrap(), g.root);
    }

    #[test]
    fn single_stage_plan_without_exchange() {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        let f = t.unary(
            Operator::Filter {
                predicate: crate::expr::Predicate::True,
            },
            a,
        );
        let s = t.unary(Operator::Sink, f);
        t.set_root(s);
        let g = decompose(&t);
        assert_eq!(g.len(), 1);
        assert_eq!(g.stages[0].nodes.len(), 3);
        assert!(g.stages[0].output_exchange.is_none());
    }

    #[test]
    fn nested_exchanges_create_chain_of_stages() {
        let mut t = PlanTree::new();
        let a = t.leaf(Operator::table_scan(0, 1, 1, vec![0]));
        let e1 = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![0]), a);
        let agg = t.unary(
            Operator::Aggregate {
                algo: crate::op::AggAlgo::Hash,
                funcs: vec![crate::op::AggFunc::Sum],
                agg_columns: vec![0],
                group_by: vec![1],
            },
            e1,
        );
        let e2 = t.unary(Operator::exchange(ExchangeKind::Gather, vec![]), agg);
        let s = t.unary(Operator::Sink, e2);
        t.set_root(s);
        let g = decompose(&t);
        assert_eq!(g.len(), 3);
        let order = g.execution_order();
        // scan stage, then agg stage, then sink stage
        assert_eq!(order.last(), Some(&g.root));
    }
}
