//! # mcsim-plan
//!
//! Physical query-plan algebra for the MaxCompute simulator used by the LOAM
//! reproduction.
//!
//! A plan is a tree of [`Operator`]s ([`PlanTree`]). Each node corresponds to
//! a data operation such as table scanning, joining, or aggregation
//! (Section 2.1 of the paper). Plans are decomposed into [`stage::StageGraph`]s
//! at operators requiring data reshuffling ([`Operator::Exchange`]), mirroring
//! MaxCompute's stage-level scheduling model.
//!
//! The crate is dependency-light on purpose: everything downstream (the
//! catalog, the optimizer, the executor, LOAM's featurizer) shares these
//! types.
//!
//! ## Example
//!
//! ```
//! use mcsim_plan::{Operator, PlanTree, ExchangeKind, JoinAlgo, JoinKind};
//!
//! let mut t = PlanTree::new();
//! let scan_a = t.leaf(Operator::table_scan(0, 4, 4, vec![0, 1]));
//! let scan_b = t.leaf(Operator::table_scan(1, 2, 8, vec![5]));
//! let ex_a = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![0]), scan_a);
//! let ex_b = t.unary(Operator::exchange(ExchangeKind::HashPartition, vec![5]), scan_b);
//! let join = t.binary(
//!     Operator::join(JoinKind::Inner, JoinAlgo::Hash, vec![0], vec![5]),
//!     ex_a,
//!     ex_b,
//! );
//! t.set_root(join);
//! assert_eq!(t.len(), 5);
//! let stages = mcsim_plan::stage::decompose(&t);
//! assert_eq!(stages.stages.len(), 3); // two scan stages + the join stage
//! ```

pub mod display;
pub mod dot;
pub mod expr;
pub mod op;
pub mod signature;
pub mod stage;
pub mod tree;

pub use expr::{CmpFn, Literal, Predicate};
pub use op::{AggAlgo, AggFunc, ExchangeKind, JoinAlgo, JoinKind, OpType, Operator, OP_TYPE_COUNT};
pub use signature::PlanSignature;
pub use tree::{NodeId, PlanNode, PlanTree};

/// Identifier of a table within the simulator's global catalog space.
///
/// Table identifiers are unbounded in production (temporal tables are created
/// and deleted constantly), which is why LOAM hash-encodes them instead of
/// one-hot encoding (Appendix B.1 of the paper).
pub type TableId = u32;

/// Identifier of a column within the simulator's global catalog space.
pub type ColumnId = u32;
