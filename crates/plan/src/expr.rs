//! Scalar predicate expressions.
//!
//! Filtering predicates in MaxCompute are structured as expression trees
//! where internal nodes denote functions (`>`, `<`, `=`, …) and leaf nodes
//! correspond to columns and constants (Section 4 of the paper). LOAM encodes
//! only a simplified view of such trees — a multi-hot of the functions
//! involved plus a hash encoding of the referenced columns — so this module
//! keeps the representation compact but faithful enough to compute
//! ground-truth selectivities against the synthetic catalog.

use crate::ColumnId;
use serde::{Deserialize, Serialize};

/// A constant literal appearing in a predicate.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub enum Literal {
    /// 64-bit integer constant (also used for dictionary-encoded strings).
    Int(i64),
    /// Floating point constant.
    Float(f64),
    /// Null marker.
    Null,
}

impl Literal {
    /// Numeric view of the literal; `Null` maps to NaN.
    pub fn as_f64(&self) -> f64 {
        match self {
            Literal::Int(v) => *v as f64,
            Literal::Float(v) => *v,
            Literal::Null => f64::NAN,
        }
    }
}

impl Eq for Literal {}

impl std::hash::Hash for Literal {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        match self {
            Literal::Int(v) => {
                state.write_u8(0);
                state.write_i64(*v);
            }
            Literal::Float(v) => {
                state.write_u8(1);
                state.write_u64(v.to_bits());
            }
            Literal::Null => state.write_u8(2),
        }
    }
}

/// Comparison functions supported in predicates.
///
/// The variants double as the vocabulary for LOAM's multi-hot function
/// encoding of `Filter`/`Calc` operators.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
#[repr(u8)]
pub enum CmpFn {
    Eq = 0,
    Ne = 1,
    Lt = 2,
    Le = 3,
    Gt = 4,
    Ge = 5,
    Like = 6,
    In = 7,
    Between = 8,
    IsNull = 9,
}

impl CmpFn {
    /// Number of distinct comparison functions (multi-hot width contribution).
    pub const COUNT: usize = 10;

    /// Stable index of this function in the multi-hot encoding.
    pub fn index(self) -> usize {
        self as usize
    }

    /// All comparison functions, in index order.
    pub fn all() -> [CmpFn; CmpFn::COUNT] {
        use CmpFn::*;
        [Eq, Ne, Lt, Le, Gt, Ge, Like, In, Between, IsNull]
    }
}

impl std::fmt::Display for CmpFn {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            CmpFn::Eq => "=",
            CmpFn::Ne => "<>",
            CmpFn::Lt => "<",
            CmpFn::Le => "<=",
            CmpFn::Gt => ">",
            CmpFn::Ge => ">=",
            CmpFn::Like => "LIKE",
            CmpFn::In => "IN",
            CmpFn::Between => "BETWEEN",
            CmpFn::IsNull => "IS NULL",
        };
        f.write_str(s)
    }
}

/// A boolean predicate over columns.
///
/// Production predicate trees can grow to hundreds of levels; the paper
/// deliberately encodes only the involved functions and columns, so this
/// simplified algebra (comparisons composed with `AND`/`OR`/`NOT`) is enough
/// to generate realistic workloads and compute exact selectivities.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Predicate {
    /// `column <fn> literal` (for `Between`, `value` is the lower bound and
    /// `value2` the upper bound; for `In`, `value` holds the list length).
    Cmp {
        /// Comparison function.
        op: CmpFn,
        /// Column being compared.
        column: ColumnId,
        /// Right-hand literal.
        value: Literal,
        /// Secondary literal (upper bound of `Between`), if any.
        value2: Option<Literal>,
    },
    /// Conjunction.
    And(Box<Predicate>, Box<Predicate>),
    /// Disjunction.
    Or(Box<Predicate>, Box<Predicate>),
    /// Negation.
    Not(Box<Predicate>),
    /// Always true (used for unfiltered scans).
    #[default]
    True,
}

impl Predicate {
    /// Convenience constructor for a comparison predicate.
    pub fn cmp(op: CmpFn, column: ColumnId, value: Literal) -> Self {
        Predicate::Cmp {
            op,
            column,
            value,
            value2: None,
        }
    }

    /// Convenience constructor for `column BETWEEN lo AND hi`.
    pub fn between(column: ColumnId, lo: Literal, hi: Literal) -> Self {
        Predicate::Cmp {
            op: CmpFn::Between,
            column,
            value: lo,
            value2: Some(hi),
        }
    }

    /// Conjunction of two predicates, collapsing `True` operands.
    pub fn and(self, other: Predicate) -> Self {
        match (self, other) {
            (Predicate::True, p) | (p, Predicate::True) => p,
            (a, b) => Predicate::And(Box::new(a), Box::new(b)),
        }
    }

    /// Disjunction of two predicates.
    pub fn or(self, other: Predicate) -> Self {
        Predicate::Or(Box::new(self), Box::new(other))
    }

    /// Collects every comparison function used anywhere in the tree
    /// (the basis of LOAM's multi-hot filter encoding).
    pub fn functions(&self) -> Vec<CmpFn> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Predicate::Cmp { op, .. } = p {
                out.push(*op);
            }
        });
        out
    }

    /// Collects every column referenced anywhere in the tree.
    pub fn columns(&self) -> Vec<ColumnId> {
        let mut out = Vec::new();
        self.visit(&mut |p| {
            if let Predicate::Cmp { column, .. } = p {
                out.push(*column);
            }
        });
        out
    }

    /// Number of comparison leaves in the tree.
    pub fn comparison_count(&self) -> usize {
        let mut n = 0;
        self.visit(&mut |p| {
            if matches!(p, Predicate::Cmp { .. }) {
                n += 1;
            }
        });
        n
    }

    /// Depth of the predicate tree (a `Cmp` or `True` leaf has depth 1).
    pub fn depth(&self) -> usize {
        match self {
            Predicate::Cmp { .. } | Predicate::True => 1,
            Predicate::Not(p) => 1 + p.depth(),
            Predicate::And(a, b) | Predicate::Or(a, b) => 1 + a.depth().max(b.depth()),
        }
    }

    /// Pre-order traversal visiting every sub-predicate.
    pub fn visit<F: FnMut(&Predicate)>(&self, f: &mut F) {
        f(self);
        match self {
            Predicate::And(a, b) | Predicate::Or(a, b) => {
                a.visit(f);
                b.visit(f);
            }
            Predicate::Not(p) => p.visit(f),
            Predicate::Cmp { .. } | Predicate::True => {}
        }
    }

    /// True if this predicate is the trivial `True`.
    pub fn is_true(&self) -> bool {
        matches!(self, Predicate::True)
    }
}

impl std::fmt::Display for Predicate {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            Predicate::Cmp {
                op,
                column,
                value,
                value2,
            } => match (op, value2) {
                (CmpFn::Between, Some(hi)) => write!(
                    f,
                    "c{} BETWEEN {} AND {}",
                    column,
                    value.as_f64(),
                    hi.as_f64()
                ),
                (CmpFn::IsNull, _) => write!(f, "c{} IS NULL", column),
                _ => write!(f, "c{} {} {}", column, op, value.as_f64()),
            },
            Predicate::And(a, b) => write!(f, "({} AND {})", a, b),
            Predicate::Or(a, b) => write!(f, "({} OR {})", a, b),
            Predicate::Not(p) => write!(f, "NOT {}", p),
            Predicate::True => f.write_str("TRUE"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Predicate {
        Predicate::cmp(CmpFn::Eq, 3, Literal::Int(7))
            .and(Predicate::cmp(CmpFn::Gt, 4, Literal::Float(0.5)))
            .or(Predicate::between(5, Literal::Int(1), Literal::Int(10)))
    }

    #[test]
    fn functions_are_collected_in_order() {
        let p = sample();
        assert_eq!(p.functions(), vec![CmpFn::Eq, CmpFn::Gt, CmpFn::Between]);
    }

    #[test]
    fn columns_are_collected() {
        assert_eq!(sample().columns(), vec![3, 4, 5]);
    }

    #[test]
    fn and_collapses_true() {
        let p = Predicate::True.and(Predicate::cmp(CmpFn::Lt, 1, Literal::Int(5)));
        assert_eq!(p.comparison_count(), 1);
        assert!(!matches!(p, Predicate::And(_, _)));
    }

    #[test]
    fn depth_counts_nesting() {
        assert_eq!(Predicate::True.depth(), 1);
        assert_eq!(sample().depth(), 3);
    }

    #[test]
    fn cmp_fn_indices_are_dense_and_unique() {
        let all = CmpFn::all();
        for (i, f) in all.iter().enumerate() {
            assert_eq!(f.index(), i);
        }
        assert_eq!(all.len(), CmpFn::COUNT);
    }

    #[test]
    fn display_round_trips_visually() {
        let p = sample();
        let s = format!("{p}");
        assert!(s.contains("c3 = 7"));
        assert!(s.contains("BETWEEN"));
    }

    #[test]
    fn literal_hash_distinguishes_variants() {
        use std::collections::HashSet;
        let mut set = HashSet::new();
        set.insert(Predicate::cmp(CmpFn::Eq, 0, Literal::Int(1)));
        set.insert(Predicate::cmp(CmpFn::Eq, 0, Literal::Float(1.0)));
        set.insert(Predicate::cmp(CmpFn::Eq, 0, Literal::Null));
        assert_eq!(set.len(), 3);
    }
}
